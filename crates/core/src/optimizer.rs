//! The M-Optimizer: the top-level greedy best-first search of
//! Algorithm 3, coordinating graph transformations (M-Rules) with
//! incremental scheduling.
//!
//! Two optimization modes are supported, as in §6.2:
//! * minimize latency under a memory limit (the algorithm as printed),
//! * minimize memory under a latency limit (the symmetric ordering).
//!
//! Duplicate states are pruned with the Weisfeiler–Lehman graph hash;
//! a relaxed dominance test (`δ = 1.1`) decides which children remain
//! on the queue. Per-phase wall-clock accounting reproduces the
//! optimization-time breakdown of Fig. 15.
//!
//! # Incremental evaluation and the evaluation cache
//!
//! Candidate evaluation is incremental end-to-end: a child derived
//! from its parent by one rewrite reuses the parent's schedule outside
//! the rewrite's dirty region (Algorithm 2 splicing in `magis_sched`)
//! and the parent's per-tensor lifetime table outside the re-ordered
//! window (delta memory profiling in `magis_sim`). Both reuse paths
//! are bit-identical to from-scratch evaluation by construction;
//! [`ParanoiaLevel::All`] (or any incumbent check under the default
//! level) re-derives the full evaluation and compares peak memory and
//! latency bit-for-bit. [`crate::state::EvalMode::Full`] in the
//! [`EvalContext`] disables the reuse for baseline comparisons.
//!
//! On top of that, an [`EvalCache`] keyed by the overlay graph's
//! structural hash short-circuits duplicate candidates reached via
//! different rewrite paths: the hash is computed *before* scheduling,
//! and a hit reuses the previously evaluated state wholesale. Workers
//! read a cache frozen for the whole batch; hits are counted and new
//! entries inserted only at the merge, in candidate order, so caching
//! never perturbs the determinism contract below. The cache is not
//! persisted in checkpoints — a resumed search starts cold.
//!
//! # Parallel candidate evaluation
//!
//! Each expansion generates all candidate transforms, sorts them by
//! [`Transform::sort_key`], evaluates the batch (apply → hash → cache
//! lookup → incremental reschedule + simulate on a miss) across up to
//! [`OptimizerConfig::threads`] scoped threads, then merges the
//! results back **in candidate order**: queue pushes, incumbent
//! updates, sequence numbers, quarantine strikes, and the `max_evals`
//! cap are all applied single-threaded at the merge. The search
//! trajectory is therefore a pure function of the input — `threads =
//! 1` and `threads = N` produce identical results (given a wall-clock
//! budget generous enough that neither run times out mid-batch).
//!
//! # Hardening
//!
//! The search is designed to survive defective rewrite rules and cost
//! models rather than trusting them:
//!
//! * **Sandboxed evaluation** — every candidate runs under
//!   [`std::panic::catch_unwind`]; a panic quarantines the candidate
//!   (counted in [`OptimizerStats::panicked`]) and, after
//!   [`OptimizerConfig::quarantine_threshold`] strikes, the whole rule
//!   family stops being generated.
//! * **Cost validation** — every evaluated child's latency is checked
//!   for NaN / infinity / negativity (always on; rejects are counted
//!   in [`OptimizerStats::cost_rejections`]).
//! * **Invariant enforcement** — gated by [`ParanoiaLevel`]: graph
//!   validity, schedule validity (topological, exactly-once), and
//!   memory-accounting conservation are re-checked for every would-be
//!   incumbent (`Incumbent`, the default) or every candidate (`All`).
//! * **Fault injection** — an optional seeded
//!   [`magis_util::fault::FaultPlan`] deterministically injects
//!   panics, NaN/negative costs, and corrupted rewrites, keyed on
//!   `(expansion, candidate)` so injections are identical across
//!   thread counts.
//! * **Checkpoint/resume** — an optional [`CheckpointPolicy`]
//!   periodically serializes the search (incumbent, frontier,
//!   seen-set, quarantine, counters) through
//!   [`crate::checkpoint::SearchCheckpoint`]; [`resume`] continues a
//!   killed search from its last checkpoint.

use crate::budget::{CancelToken, SearchBudget};
use crate::checkpoint::{
    CheckpointCounters, CheckpointError, MctsCheckpoint, SearchCheckpoint,
};
use crate::driver::{DriverFrontier, DriverKind, GreedyDriver, MctsDriver, SearchDriver, StepOutcome};
use crate::eval_cache::EvalCache;
use crate::pareto::ParetoSet;
use crate::rules::{self, RuleConfig, Transform};
use crate::state::{build_overlay_graph, evaluate_overlay, EvalContext, EvalError, MState};
use magis_graph::algo::graph_hash;
use magis_graph::graph::Graph;
use magis_obs::metrics::{labeled, Counter, Gauge, Histogram};
use magis_obs::timeline::{SearchTimeline, TimelinePoint};
use magis_sched::validate_schedule;
use magis_sim::{evaluate_checked, memory_profile};
use magis_util::fault::{FaultPlan, FaultSite};
use magis_util::parallel;
use magis_util::sync::ShardedSet;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Global metric handles (`magis_core_*`), looked up once. All of
/// these are updated exclusively on the merge thread, so their values
/// are bit-identical across `--threads 1` vs `N` (see the module docs'
/// determinism contract); only the `*_seconds` histograms carry
/// wall-clock values.
struct CoreObs {
    searches: Counter,
    resumes: Counter,
    expansions: Counter,
    candidates: Counter,
    evaluated: Counter,
    filtered: Counter,
    panicked: Counter,
    cost_rejections: Counter,
    invariant_rejections: Counter,
    quarantined_candidates: Counter,
    quarantined_families: Counter,
    queue_pushes: Counter,
    incumbent_improvements: Counter,
    checkpoints_written: Counter,
    checkpoint_failures: Counter,
    eval_cache_hits: Counter,
    eval_cache_misses: Counter,
    eval_cache_evictions: Counter,
    eval_cache_purged: Counter,
    incremental_evals: Counter,
    incremental_carried_wins: Counter,
    incremental_window: Histogram,
    expansion_seconds: Histogram,
    best_peak_bytes: Gauge,
    best_latency: Gauge,
    frontier_size: Gauge,
    eval_cache_size: Gauge,
}

fn core_obs() -> &'static CoreObs {
    static OBS: OnceLock<CoreObs> = OnceLock::new();
    use magis_obs::metrics::{counter, gauge, histogram};
    OBS.get_or_init(|| CoreObs {
        searches: counter("magis_core_searches"),
        resumes: counter("magis_core_resumes"),
        expansions: counter("magis_core_expansions"),
        candidates: counter("magis_core_candidates"),
        evaluated: counter("magis_core_evaluated"),
        filtered: counter("magis_core_filtered"),
        panicked: counter("magis_core_panicked"),
        cost_rejections: counter("magis_core_cost_rejections"),
        invariant_rejections: counter("magis_core_invariant_rejections"),
        quarantined_candidates: counter("magis_core_quarantined_candidates"),
        quarantined_families: counter("magis_core_quarantined_families"),
        queue_pushes: counter("magis_core_queue_pushes"),
        incumbent_improvements: counter("magis_core_incumbent_improvements"),
        checkpoints_written: counter("magis_core_checkpoints_written"),
        checkpoint_failures: counter("magis_core_checkpoint_failures"),
        eval_cache_hits: counter("magis_core_eval_cache_hits"),
        eval_cache_misses: counter("magis_core_eval_cache_misses"),
        eval_cache_evictions: counter("magis_core_eval_cache_evictions"),
        eval_cache_purged: counter("magis_core_eval_cache_purged"),
        incremental_evals: counter("magis_core_incremental_evals"),
        incremental_carried_wins: counter("magis_core_incremental_carried_wins"),
        incremental_window: histogram("magis_core_incremental_window"),
        expansion_seconds: histogram("magis_core_expansion_seconds"),
        best_peak_bytes: gauge("magis_core_best_peak_bytes"),
        best_latency: gauge("magis_core_best_latency"),
        frontier_size: gauge("magis_core_frontier_size"),
        eval_cache_size: gauge("magis_core_eval_cache_size"),
    })
}

/// Per-(family, outcome) labeled counter, cached so the registry lock
/// is only taken on the first occurrence of each pair.
fn outcome_counter(family: u8, outcome: &'static str) -> Counter {
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    static CACHE: Mutex<BTreeMap<(u8, &'static str), Counter>> = Mutex::new(BTreeMap::new());
    let mut cache = CACHE.lock().unwrap();
    cache
        .entry((family, outcome))
        .or_insert_with(|| {
            magis_obs::metrics::counter(&labeled(
                "magis_core_candidate_outcomes",
                &[("family", rules::family_name(family)), ("outcome", outcome)],
            ))
        })
        .clone()
}

/// Optimization objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize latency subject to `peak_bytes ≤ mem_limit`.
    MinLatency {
        /// Peak-memory budget in bytes.
        mem_limit: u64,
    },
    /// Minimize peak memory subject to `latency ≤ lat_limit`.
    MinMemory {
        /// Latency budget in seconds.
        lat_limit: f64,
    },
}

impl Objective {
    /// Lexicographic key: smaller is better (`BetterThan`, Algorithm 3
    /// line 1, and its symmetric counterpart).
    pub(crate) fn key(&self, mem: u64, lat: f64) -> (f64, f64) {
        match *self {
            Objective::MinLatency { mem_limit } => (mem.max(mem_limit) as f64, lat),
            Objective::MinMemory { lat_limit } => (lat.max(lat_limit), mem as f64),
        }
    }

    /// `BetterThan(a, b, δ)`: is `a` better than `δ`-relaxed `b`?
    pub(crate) fn better_than(&self, a: (u64, f64), b: (u64, f64), delta: f64) -> bool {
        let ka = self.key(a.0, a.1);
        let kb = match *self {
            Objective::MinLatency { mem_limit } => {
                ((b.0 as f64 * delta).max(mem_limit as f64), b.1 * delta)
            }
            Objective::MinMemory { lat_limit } => {
                ((b.1 * delta).max(lat_limit), b.0 as f64 * delta)
            }
        };
        ka < kb
    }

    /// Whether a state satisfies the hard constraint.
    pub fn satisfied(&self, mem: u64, lat: f64) -> bool {
        match *self {
            Objective::MinLatency { mem_limit } => mem <= mem_limit,
            Objective::MinMemory { lat_limit } => lat <= lat_limit,
        }
    }
}

/// How much invariant re-checking the search performs on evaluated
/// candidates (see the module docs' *Hardening* section).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParanoiaLevel {
    /// Trust the rewrite/scheduling machinery; only the always-on cost
    /// validation runs.
    Off,
    /// Re-validate graph, schedule, and memory accounting for every
    /// candidate that would become the incumbent (the default: O(1)
    /// validations per incumbent improvement).
    #[default]
    Incumbent,
    /// Re-validate every evaluated candidate, in the worker (most
    /// expensive, catches corruption before it reaches the queue).
    All,
}

impl ParanoiaLevel {
    /// Parses the CLI spelling (`off` / `incumbent` / `all`).
    pub fn parse(s: &str) -> Option<ParanoiaLevel> {
        match s {
            "off" => Some(ParanoiaLevel::Off),
            "incumbent" => Some(ParanoiaLevel::Incumbent),
            "all" => Some(ParanoiaLevel::All),
            _ => None,
        }
    }
}

/// Why the search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// The priority queue ran dry: every reachable state within the
    /// relaxed-dominance frontier was explored.
    #[default]
    QueueExhausted,
    /// The wall-clock budget expired.
    BudgetExpired,
    /// The `max_evals` cap was reached.
    EvalCapReached,
    /// The queue ran dry *because* rule families were quarantined:
    /// faults (injected or real) shut down enough of the rule
    /// vocabulary that the search could no longer expand.
    FaultStorm,
    /// The hard [`SearchBudget::wall_limit`] deadline passed; the
    /// best-so-far incumbent was returned (anytime semantics).
    Deadline,
    /// An external [`CancelToken`] requested cancellation (e.g. a
    /// service draining for shutdown); the best-so-far incumbent was
    /// returned.
    Cancelled,
}

impl StopReason {
    /// Whether the search ran to a *deterministic* completion — the
    /// reachable space was exhausted or a candidate cap (a pure
    /// function of the trajectory, unlike wall clock) was hit. Results
    /// with a deterministic stop are safe to serve from caches keyed on
    /// the job spec; deadline/budget/cancel stops are anytime snapshots
    /// that depend on machine speed.
    pub fn is_deterministic(&self) -> bool {
        matches!(
            self,
            StopReason::QueueExhausted | StopReason::EvalCapReached | StopReason::FaultStorm
        )
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::QueueExhausted => write!(f, "queue-exhausted"),
            StopReason::BudgetExpired => write!(f, "budget-expired"),
            StopReason::EvalCapReached => write!(f, "eval-cap-reached"),
            StopReason::FaultStorm => write!(f, "fault-storm"),
            StopReason::Deadline => write!(f, "deadline"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Periodic checkpointing policy.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Where to write the checkpoint (atomically, via temp + rename).
    pub path: PathBuf,
    /// Write after every this many candidate evaluations (default 64).
    pub every_evals: usize,
    /// Capture the full priority-queue frontier in every checkpoint
    /// (default off). Frontier checkpoints are larger but resume
    /// **trajectory-exact**: the queue, seen-set, and sequence counter
    /// come back verbatim, so a killed run resumed under the same
    /// candidate cap finishes bit-identical to an uninterrupted one.
    /// The final checkpoint of a frontier policy is written *before*
    /// the incumbent's full-beam polish, so a resumed run re-applies
    /// the polish once, at its own true end, exactly like an
    /// uninterrupted run.
    pub frontier: bool,
}

impl CheckpointPolicy {
    /// A policy writing to `path` every 64 evaluations.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy { path: path.into(), every_evals: 64, frontier: false }
    }

    /// Replaces the evaluation interval (0 is treated as 1).
    pub fn with_every(mut self, every_evals: usize) -> Self {
        self.every_evals = every_evals.max(1);
        self
    }

    /// Enables (or disables) frontier capture for trajectory-exact
    /// resume.
    pub fn with_frontier(mut self, frontier: bool) -> Self {
        self.frontier = frontier;
        self
    }
}

/// Strike accounting for rule families (`Transform::sort_key().0`):
/// a family that panics or corrupts state `threshold` times stops
/// being generated for the rest of the search.
#[derive(Debug, Clone, Default)]
struct Quarantine {
    threshold: u32,
    strikes: BTreeMap<u8, u32>,
}

impl Quarantine {
    fn new(threshold: u32) -> Self {
        Quarantine { threshold, strikes: BTreeMap::new() }
    }

    fn load(&mut self, entries: &[(u8, u32)]) {
        for &(fam, n) in entries {
            self.strikes.insert(fam, n);
        }
    }

    fn strike(&mut self, family: u8) {
        *self.strikes.entry(family).or_insert(0) += 1;
    }

    fn is_quarantined(&self, family: u8) -> bool {
        self.threshold > 0
            && self.strikes.get(&family).copied().unwrap_or(0) >= self.threshold
    }

    fn entries(&self) -> Vec<(u8, u32)> {
        self.strikes.iter().map(|(&f, &n)| (f, n)).collect()
    }

    fn quarantined_families(&self) -> Vec<u8> {
        self.strikes
            .keys()
            .copied()
            .filter(|&f| self.is_quarantined(f))
            .collect()
    }
}

/// A deterministic search-progress snapshot, reported through a
/// [`ProgressSink`] at every expansion boundary (the search's only
/// synchronization point) and once more after the final polish.
///
/// Every field except `phase` mirrors the values recorded into the
/// [`SearchTimeline`] at the same instant, and all of them are taken
/// on the merge thread *after* the batch merged — the snapshot
/// contents are therefore bit-identical for every thread count, the
/// same way timeline points and count metrics are. Only the *timing*
/// of delivery varies run-to-run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Expansion index (0-based, cumulative across resume).
    pub expansion: u64,
    /// Candidates evaluated so far (cumulative across resume).
    pub evaluated: u64,
    /// Incumbent peak memory (liveness accounting), bytes.
    pub best_peak_bytes: u64,
    /// Incumbent allocator-planned peak, when the search steers on the
    /// planned objective.
    pub best_planned_peak_bytes: Option<u64>,
    /// Incumbent simulated latency, seconds.
    pub best_latency: f64,
    /// Current frontier (queue) size.
    pub frontier_size: u64,
    /// Current Pareto-front size.
    pub pareto_size: u64,
    /// Eval-cache hits so far (cumulative across resume).
    pub eval_cache_hits: u64,
    /// Search phase: `"search"` while expanding, `"done"` for the
    /// final snapshot after the polish.
    pub phase: &'static str,
}

/// Consumer of [`ProgressSnapshot`]s. Implementations must be cheap
/// and non-blocking — `report` runs on the merge thread between
/// expansions, so a slow sink slows the search (but can never perturb
/// its trajectory: snapshots are taken after all merge-time decisions).
pub trait ProgressSink: Send + Sync {
    /// Consumes one snapshot.
    fn report(&self, snap: &ProgressSnapshot);
}

/// Cloneable handle wrapping a shared [`ProgressSink`] so it can ride
/// on the (`Clone + Debug`) [`OptimizerConfig`].
#[derive(Clone)]
pub struct ProgressHook(pub Arc<dyn ProgressSink>);

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// What to optimize.
    pub objective: Objective,
    /// Wall-clock search budget (the paper uses 3 minutes; scaled-down
    /// budgets reproduce the same dynamics on the simulator).
    pub budget: Duration,
    /// Hard cap on candidate evaluations (tests / determinism).
    pub max_evals: usize,
    /// F-Tree max-level `L` (Algorithm 1; default 4 per §7.1).
    pub max_level: usize,
    /// Relaxed-push coefficient `δ` (Algorithm 3; 1.1 per §6.2).
    pub delta: f64,
    /// Rule generation knobs (hot-spot filter = `naïve-sch-rule`
    /// ablation, TASO on/off).
    pub rules: RuleConfig,
    /// Evaluation machinery.
    pub ctx: EvalContext,
    /// `naïve-fission` ablation (§7.2.5): replace Algorithm 1 with
    /// random fission candidates.
    pub naive_fission: bool,
    /// Random seed for the naïve-fission ablation.
    pub seed: u64,
    /// Worker threads for candidate evaluation. `1` evaluates inline
    /// (no threads spawned); the default is the machine's available
    /// parallelism. Results are identical for every value — see the
    /// module docs.
    pub threads: usize,
    /// Invariant-enforcement level (default: `Incumbent`).
    pub paranoia: ParanoiaLevel,
    /// Strikes before a rule family is quarantined (default 3;
    /// 0 disables quarantining).
    pub quarantine_threshold: u32,
    /// Deterministic fault injection (tests / chaos drills). `None`
    /// injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Periodic checkpointing. `None` writes no checkpoints.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Capacity of the structural-hash evaluation cache (evaluated
    /// states remembered so duplicate candidates reached via different
    /// rewrite paths skip scheduling + simulation). `0` disables
    /// caching. Default 1024.
    pub eval_cache: usize,
    /// Hard anytime deadline contract: wall-clock limit (stops with
    /// [`StopReason::Deadline`], checked before the soft `budget`) and
    /// candidate cap (combined with `max_evals` as the min). Default
    /// unlimited.
    pub search_budget: SearchBudget,
    /// Cooperative cancellation + heartbeat token. When set, the
    /// search polls it at expansion boundaries and inside the fan-out
    /// (stopping with [`StopReason::Cancelled`]) and bumps its
    /// heartbeat once per expansion and per merged evaluation. `None`
    /// disables both.
    pub cancel: Option<CancelToken>,
    /// Live progress reporting: when set, a [`ProgressSnapshot`] is
    /// delivered at every expansion boundary and once after the final
    /// polish. `None` reports nothing.
    pub progress: Option<ProgressHook>,
    /// Which search strategy drives the optimizer (default
    /// [`DriverKind::Greedy`], the paper's Algorithm 3). Checkpoints
    /// are tagged with the driver; [`resume`] restores the engine
    /// named by the checkpoint, not this field.
    pub driver: DriverKind,
}

impl OptimizerConfig {
    /// Defaults matching the paper's settings, for the given objective.
    pub fn new(objective: Objective) -> Self {
        OptimizerConfig {
            objective,
            budget: Duration::from_secs(10),
            max_evals: usize::MAX,
            max_level: 4,
            delta: 1.1,
            rules: RuleConfig::default(),
            ctx: EvalContext::default(),
            naive_fission: false,
            seed: 0x5eed,
            threads: parallel::available_threads(),
            paranoia: ParanoiaLevel::default(),
            quarantine_threshold: 3,
            fault_plan: None,
            checkpoint: None,
            eval_cache: 1024,
            search_budget: SearchBudget::UNLIMITED,
            cancel: None,
            progress: None,
            driver: DriverKind::default(),
        }
    }

    /// Replaces the time budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Caps the number of candidate evaluations.
    pub fn with_max_evals(mut self, max_evals: usize) -> Self {
        self.max_evals = max_evals;
        self
    }

    /// Sets the evaluation worker-thread count (0 is treated as 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the invariant-enforcement level.
    pub fn with_paranoia(mut self, paranoia: ParanoiaLevel) -> Self {
        self.paranoia = paranoia;
        self
    }

    /// Enables deterministic fault injection.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables periodic checkpointing.
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Sets the quarantine strike threshold (0 disables quarantining).
    pub fn with_quarantine_threshold(mut self, threshold: u32) -> Self {
        self.quarantine_threshold = threshold;
        self
    }

    /// Sets the evaluation-cache capacity (0 disables caching).
    pub fn with_eval_cache(mut self, capacity: usize) -> Self {
        self.eval_cache = capacity;
        self
    }

    /// Sets the hard anytime deadline contract (wall limit and/or
    /// candidate cap).
    pub fn with_search_budget(mut self, budget: SearchBudget) -> Self {
        self.search_budget = budget;
        self
    }

    /// Attaches a cooperative cancellation/heartbeat token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a live progress sink (see [`ProgressSnapshot`]).
    pub fn with_progress(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.progress = Some(ProgressHook(sink));
        self
    }

    /// Selects the search strategy (see [`DriverKind`]).
    pub fn with_driver(mut self, driver: DriverKind) -> Self {
        self.driver = driver;
        self
    }
}

/// Per-phase time accounting (Fig. 15) plus hardening counters.
#[derive(Debug, Clone, Default)]
pub struct OptimizerStats {
    /// Time spent applying transformations. With `threads > 1` this is
    /// CPU time summed over workers, not wall-clock.
    pub trans_time: Duration,
    /// Time spent (incremental) scheduling + simulating. The paper
    /// separates "Sched." and "Simul."; our evaluation fuses them, so
    /// the split is attributed by sub-phase below. CPU time summed
    /// over workers.
    pub sched_sim_time: Duration,
    /// Time spent hashing/filtering duplicate graphs. CPU time summed
    /// over workers.
    pub hash_time: Duration,
    /// Wall-clock time spent inside candidate-evaluation fan-outs
    /// (compare against `trans_time + sched_sim_time + hash_time` to
    /// see the parallel speed-up).
    pub eval_wall_time: Duration,
    /// Worker threads the search was configured with.
    pub threads: usize,
    /// Which [`SearchDriver`] strategy ran the search (resumed runs
    /// report the checkpoint's driver, which wins over the config).
    pub driver: DriverKind,
    /// States popped from the queue.
    pub expanded: usize,
    /// Candidate transforms generated.
    pub candidates: usize,
    /// Candidates evaluated (scheduled + simulated).
    pub evaluated: usize,
    /// Duplicate states filtered by the hash test.
    pub filtered: usize,
    /// Why the search stopped.
    pub stop_reason: StopReason,
    /// Candidate evaluations that panicked (caught by the sandbox).
    pub panicked: usize,
    /// Candidates rejected by the always-on cost validation
    /// (NaN / infinite / negative latency).
    pub cost_rejections: usize,
    /// Candidates rejected by invariant enforcement (graph, schedule,
    /// or memory-accounting violations under [`ParanoiaLevel`]).
    pub invariant_rejections: usize,
    /// Candidates never evaluated because their rule family was
    /// quarantined.
    pub quarantined_candidates: usize,
    /// Final strike counts per rule family (`sort_key().0`).
    pub quarantine_strikes: Vec<(u8, u32)>,
    /// Rule families over the strike threshold at search end.
    pub quarantined_families: Vec<u8>,
    /// Checkpoints successfully written.
    pub checkpoints_written: usize,
    /// Checkpoint writes that failed (non-fatal; the search continues).
    pub checkpoint_failures: usize,
    /// Whether this search was resumed from a checkpoint.
    pub resumed: bool,
    /// Evaluated candidates served from the evaluation cache (the
    /// expensive schedule + simulate phases were skipped).
    pub eval_cache_hits: usize,
    /// Evaluated candidates that missed the cache (and, when caching
    /// is enabled, were inserted for future duplicates).
    pub eval_cache_misses: usize,
    /// Cache entries evicted by the FIFO capacity bound.
    pub eval_cache_evictions: usize,
    /// Cache entries purged because their rule family was quarantined.
    pub eval_cache_purged: usize,
}

/// A point on the search's progress curve.
#[derive(Debug, Clone, Copy)]
pub struct ProgressPoint {
    /// Elapsed seconds when the incumbent improved.
    pub elapsed: f64,
    /// Incumbent peak memory.
    pub peak_bytes: u64,
    /// Incumbent latency.
    pub latency: f64,
}

/// Result of [`optimize`].
#[derive(Debug)]
pub struct OptimizeResult {
    /// The best state found.
    pub best: MState,
    /// All `(mem, latency)` observations (Pareto raw material).
    pub pareto: ParetoSet,
    /// Incumbent-improvement history (Fig. 13 curves).
    pub history: Vec<ProgressPoint>,
    /// Phase timing and counters (Fig. 15).
    pub stats: OptimizerStats,
    /// The recorded search timeline: per-expansion progress, Pareto
    /// evolution, per-rule-family stats, and the incumbent's final
    /// memory profile. Always recorded (the cost is a few vector
    /// pushes per expansion); serialize with
    /// [`SearchTimeline::to_json`].
    pub timeline: SearchTimeline,
}

/// One entry on the greedy best-first priority queue: ordered by the
/// objective key, then by sequence number (insertion order) so the pop
/// sequence is total and deterministic.
pub(crate) struct QueueEntry {
    pub(crate) key: (f64, f64),
    pub(crate) seq: usize,
    pub(crate) state: MState,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for best-first (smallest key).
        other
            .key
            .0
            .total_cmp(&self.key.0)
            .then_with(|| other.key.1.total_cmp(&self.key.1))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The outcome of evaluating one candidate transform. Produced by
/// workers (possibly out of order), consumed by the merge strictly in
/// candidate order.
enum CandOutcome {
    /// The wall-clock budget expired (or the serial eval cap was hit)
    /// before this candidate ran. The merge discards everything from
    /// the first such marker on, keeping the consumed prefix
    /// contiguous.
    Skipped,
    /// Apply or incremental evaluation failed; the candidate is
    /// dropped.
    Failed { trans: Duration, sched_sim: Duration },
    /// Evaluation panicked; the sandbox caught it. Counts a quarantine
    /// strike against the candidate's rule family at the merge.
    Panicked { trans: Duration },
    /// The evaluated cost failed validation (NaN / infinite /
    /// negative latency).
    BadCost { trans: Duration, sched_sim: Duration },
    /// Structural invariant violation caught in the worker
    /// ([`ParanoiaLevel::All`] only).
    Invalid { trans: Duration, sched_sim: Duration },
    /// A fully evaluated, hashed child state (boxed: this variant is
    /// ~20× the size of the others).
    Evaluated {
        child: Box<MState>,
        hash: u64,
        /// Served from the (batch-frozen) evaluation cache: schedule +
        /// simulate were skipped. Counted at the merge so the counters
        /// are deterministic across thread counts.
        cache_hit: bool,
        /// A post-evaluation fault injection mutated this child; it
        /// must never be inserted into the evaluation cache.
        tainted: bool,
        trans: Duration,
        sched_sim: Duration,
        hash_t: Duration,
    },
}

/// Re-checks the structural invariants of an evaluated state: the
/// overlay graph validates, the schedule is a topological exactly-once
/// cover of it, and — the incremental-vs-full cross-check — a complete
/// from-scratch evaluation of the same order reproduces the state's
/// peak memory and latency **bit-for-bit**. Incremental scheduling,
/// delta memory profiling, and the memoizing `PerfCache` all promise
/// exactness, so any divergence means one of them (or a rewrite)
/// corrupted the state. Used by the paranoia gates.
fn check_invariants(child: &MState, ctx: &EvalContext) -> Result<(), String> {
    child.eval.graph.validate().map_err(|e| format!("graph: {e}"))?;
    validate_schedule(&child.eval.graph, &child.eval.order)
        .map_err(|e| format!("schedule: {e}"))?;
    let full = evaluate_checked(&child.eval.graph, &child.eval.order, &ctx.cost())
        .map_err(|e| format!("memory: {e}"))?;
    if full.peak_bytes != child.eval.peak_bytes {
        return Err(format!(
            "cross-check: incremental peak_bytes {} != full {}",
            child.eval.peak_bytes, full.peak_bytes
        ));
    }
    if full.latency.to_bits() != child.eval.latency.to_bits() {
        return Err(format!(
            "cross-check: incremental latency {:e} != full {:e}",
            child.eval.latency, full.latency
        ));
    }
    // The planning stage gets the same treatment: a delta re-plan must
    // be bit-identical (full struct equality — offsets, intervals and
    // peaks) to a from-scratch plan of the same order.
    if let Some(plan) = &child.eval.plan {
        let full_plan = magis_sim::memory_plan(&child.eval.graph, &child.eval.order)
            .map_err(|e| format!("plan: {e}"))?;
        if *plan != full_plan {
            return Err(format!(
                "cross-check: incremental plan diverged (planned peak {} != full {})",
                plan.planned_peak_bytes, full_plan.planned_peak_bytes
            ));
        }
    } else if ctx.mem_objective == magis_sim::MemObjective::Planned {
        return Err("planned objective but the state carries no memory plan".to_string());
    }
    Ok(())
}

/// Apply → hash → cache lookup → (on a miss) incremental reschedule +
/// simulate, with per-phase CPU-time attribution, wrapped in a panic
/// sandbox. Reads shared search state (`cache` is frozen for the whole
/// batch) but never writes it, so it is safe to run concurrently for
/// independent candidates.
///
/// `fault` is `(plan, key)` when fault injection is active: the key
/// is derived from the (expansion, candidate) pair, never from thread
/// identity or timing, so injections are bit-identical across thread
/// counts.
fn evaluate_candidate(
    state: &MState,
    t: &Transform,
    ctx: &EvalContext,
    cache: &EvalCache,
    fault: Option<(&FaultPlan, u64)>,
    paranoia: ParanoiaLevel,
) -> CandOutcome {
    // Observability is suppressed for the whole evaluation — on worker
    // threads AND on the inline path — because parallel workers may
    // over-evaluate past the `max_evals` cap (the merge discards the
    // excess). Anything the sim/sched layers would record here would
    // therefore differ across thread counts. The merge re-attributes
    // the measured durations on the coordinating thread instead.
    magis_obs::gate::suppress(|| {
        let t0 = Instant::now();
        // AssertUnwindSafe: the closure only reads `state`/`ctx`/`cache`
        // and builds fresh values; a panic can leave no broken shared
        // state behind.
        match catch_unwind(AssertUnwindSafe(|| {
            evaluate_candidate_inner(state, t, ctx, cache, fault, paranoia)
        })) {
            Ok(outcome) => outcome,
            Err(_) => CandOutcome::Panicked { trans: t0.elapsed() },
        }
    })
}

fn evaluate_candidate_inner(
    state: &MState,
    t: &Transform,
    ctx: &EvalContext,
    cache: &EvalCache,
    fault: Option<(&FaultPlan, u64)>,
    paranoia: ParanoiaLevel,
) -> CandOutcome {
    if let Some((plan, key)) = fault {
        if plan.should_inject(FaultSite::EvalPanic, key) {
            panic!("injected fault: candidate evaluation panic (key {key:#x})");
        }
    }
    let t0 = Instant::now();
    let applied = match rules::apply(state, t) {
        Ok(a) => a,
        Err(_) => return CandOutcome::Failed { trans: t0.elapsed(), sched_sim: Duration::ZERO },
    };
    let trans = t0.elapsed();

    // Build the overlay and hash it *before* scheduling: the same hash
    // keys both the seen-set duplicate filter and the evaluation
    // cache, so a candidate whose graph was already evaluated (via any
    // rewrite path) skips the expensive schedule + simulate phases.
    let t0 = Instant::now();
    let overlay = match build_overlay_graph(&applied.base, &applied.ftree) {
        Ok(g) => g,
        Err(_) => return CandOutcome::Failed { trans, sched_sim: t0.elapsed() },
    };
    let overlay_t = t0.elapsed();
    let t0 = Instant::now();
    let hash = graph_hash(&overlay);
    let hash_t = t0.elapsed();

    let t0 = Instant::now();
    let (mut child, cache_hit) = match cache.get(hash, ctx.mem_objective) {
        Some(cached) => {
            // Hash-equal states are interchangeable to the search (the
            // equivalence the seen-set dedup already relies on), so the
            // cached state is reused wholesale; staleness is inherited
            // from every lineage so re-analysis is never skipped.
            let mut c = cached.clone();
            c.tree_stale = c.tree_stale || applied.tree_stale || state.tree_stale;
            (c, true)
        }
        None => {
            let eval = match evaluate_overlay(&applied.base, overlay, Some(state), &applied.mutated, ctx)
            {
                Ok(e) => e,
                Err(EvalError::Apply(_)) => {
                    return CandOutcome::Failed { trans, sched_sim: overlay_t + t0.elapsed() }
                }
                Err(EvalError::Cost(_)) => {
                    return CandOutcome::BadCost { trans, sched_sim: overlay_t + t0.elapsed() }
                }
            };
            let child = MState {
                base: applied.base,
                ftree: applied.ftree,
                eval,
                tree_stale: applied.tree_stale || state.tree_stale,
            };
            (child, false)
        }
    };
    let sched_sim = overlay_t + t0.elapsed();

    let mut tainted = false;
    if let Some((plan, key)) = fault {
        // Simulates a buggy rewrite: the state's schedule no longer
        // covers the graph exactly once. Only invariant enforcement
        // can catch this — cost values stay plausible. Injected after
        // the cache lookup so cached clones replay the fault too.
        if plan.should_inject(FaultSite::CorruptRewrite, key) && child.eval.order.len() >= 2 {
            let first = child.eval.order[0];
            let last = child.eval.order.len() - 1;
            child.eval.order[last] = first;
            tainted = true;
        }
        // Simulates a defective cost model *after* the (real)
        // evaluation ran, so the defect reaches the always-on cost
        // validation below rather than being pre-empted by it.
        if plan.should_inject(FaultSite::NanCost, key) {
            child.eval.latency = f64::NAN;
            tainted = true;
        }
        if plan.should_inject(FaultSite::NegativeCost, key) {
            child.eval.latency = -child.eval.latency.abs() - 1.0;
            tainted = true;
        }
    }

    // Always-on cost validation: defective latencies must never reach
    // the objective, whatever the paranoia level.
    if !child.eval.latency.is_finite() || child.eval.latency < 0.0 {
        return CandOutcome::BadCost { trans, sched_sim };
    }

    if paranoia == ParanoiaLevel::All && check_invariants(&child, ctx).is_err() {
        return CandOutcome::Invalid { trans, sched_sim };
    }

    CandOutcome::Evaluated {
        child: Box::new(child),
        hash,
        cache_hit,
        tainted,
        trans,
        sched_sim,
        hash_t,
    }
}

// The fan-out shares states and the evaluation context across scoped
// threads; keep the core search types thread-safe by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MState>();
    assert_send_sync::<EvalContext>();
    assert_send_sync::<EvalCache>();
    assert_send_sync::<OptimizerConfig>();
    assert_send_sync::<Transform>();
    assert_send_sync::<FaultPlan>();
};

/// Pre-seeded search bookkeeping: zeroed for a fresh [`optimize`],
/// loaded from a [`SearchCheckpoint`] by [`resume`].
struct SearchSeed {
    seed_cost: (u64, f64),
    counters: CheckpointCounters,
    pareto: Vec<(u64, f64)>,
    seen: Vec<u64>,
    quarantine: Vec<(u8, u32)>,
    resumed: bool,
    /// Restored driver-frontier entries `(seq, state)` from a
    /// frontier-bearing checkpoint (queue entries for greedy, tree
    /// nodes for MCTS). Non-empty switches resume to trajectory-exact
    /// mode: the driver state and seen-set come back verbatim and the
    /// incumbent is not re-pushed.
    frontier: Vec<(u64, MState)>,
    /// The sequence counter to continue from in trajectory-exact mode.
    next_seq: u64,
    /// Which driver produced the checkpoint (fresh searches: the
    /// config's choice).
    driver: DriverKind,
    /// MCTS tree metadata from a frontier-bearing MCTS checkpoint.
    mcts: Option<MctsCheckpoint>,
}

impl SearchSeed {
    fn fresh(seed_cost: (u64, f64), driver: DriverKind) -> Self {
        SearchSeed {
            seed_cost,
            counters: CheckpointCounters::default(),
            pareto: Vec::new(),
            seen: Vec::new(),
            quarantine: Vec::new(),
            resumed: false,
            frontier: Vec::new(),
            next_seq: 0,
            driver,
            mcts: None,
        }
    }
}

/// Runs Algorithm 3 on `g`.
///
/// # Panics
///
/// Panics if the seed graph itself fails to evaluate (see
/// [`try_optimize`] for the fallible variant).
pub fn optimize(g: Graph, cfg: &OptimizerConfig) -> OptimizeResult {
    try_optimize(g, cfg).expect("seed graph evaluates")
}

/// [`optimize`] with seed-evaluation failures surfaced as a typed
/// [`EvalError`] instead of a panic.
pub fn try_optimize(g: Graph, cfg: &OptimizerConfig) -> Result<OptimizeResult, EvalError> {
    let mut init = MState::try_initial(g, &cfg.ctx)?;
    analyze(&mut init, cfg);
    let seed = SearchSeed::fresh(init.cost(), cfg.driver);
    Ok(run_search(init, seed, cfg))
}

/// Continues a search from a [`SearchCheckpoint`]: the incumbent is
/// restored (both graphs re-validated, its schedule re-checked and
/// re-simulated), the frontier / seen-set / quarantine / counters are
/// reloaded, and the search resumes under the **caller's** config —
/// budget, thread count, and objective are taken from `cfg`, not from
/// the checkpoint.
///
/// # Errors
///
/// Returns a typed [`CheckpointError`] if the checkpoint is corrupt
/// (bad record, invalid schedule, defective re-simulated costs).
pub fn resume(ckpt: &SearchCheckpoint, cfg: &OptimizerConfig) -> Result<OptimizeResult, CheckpointError> {
    let best = ckpt.restore_state(&cfg.ctx)?;
    let frontier = ckpt.restore_frontier(&cfg.ctx)?;
    // An MCTS frontier is a tree: the metadata must pair one-to-one
    // with the restored states (dense node ids, in-range parent links)
    // or the driver cannot be rebuilt.
    if ckpt.driver == DriverKind::Mcts && !frontier.is_empty() {
        let ok = ckpt.mcts.as_ref().is_some_and(|m| {
            m.nodes.len() == frontier.len()
                && frontier.iter().enumerate().all(|(i, (sq, _))| *sq == i as u64)
                && m.nodes.iter().enumerate().all(|(i, n)| {
                    n.parent.map_or(i == 0, |p| (p as usize) < m.nodes.len() && p as usize != i)
                })
        });
        if !ok {
            return Err(CheckpointError::Parse {
                line: 0,
                msg: "mcts tree metadata does not match the frontier".to_string(),
            });
        }
    }
    let seed = SearchSeed {
        seed_cost: ckpt.seed_cost,
        counters: ckpt.counters,
        pareto: ckpt.pareto.clone(),
        seen: ckpt.seen.clone(),
        quarantine: ckpt.quarantine.clone(),
        resumed: true,
        frontier,
        next_seq: ckpt.next_seq,
        driver: ckpt.driver,
        mcts: ckpt.mcts.clone(),
    };
    Ok(run_search(best, seed, cfg))
}

#[allow(clippy::too_many_arguments)]
fn write_checkpoint(
    policy: &CheckpointPolicy,
    best: &MState,
    seed_cost: (u64, f64),
    rng_seed: u64,
    pareto: &ParetoSet,
    seen: &ShardedSet,
    quarantine: &Quarantine,
    stats: &OptimizerStats,
    driver: DriverKind,
    frontier: Option<DriverFrontier>,
) -> Result<(), CheckpointError> {
    let (best_order, ftree_nodes, base_record, eval_record) =
        SearchCheckpoint::snapshot_state(best);
    // Frontier capture: the driver serialized its complete strategy
    // state (queue entries or tree nodes + metadata) into the
    // snapshot; non-frontier checkpoints persist the incumbent only.
    let (next_seq, frontier, mcts) = match frontier {
        Some(f) => (f.next_seq, f.entries, f.mcts),
        None => (0, Vec::new(), None),
    };
    let ckpt = SearchCheckpoint {
        rng_seed,
        seed_cost,
        best_cost: best.cost(),
        counters: CheckpointCounters {
            expanded: stats.expanded as u64,
            evaluated: stats.evaluated as u64,
            candidates: stats.candidates as u64,
            filtered: stats.filtered as u64,
            panicked: stats.panicked as u64,
            cost_rejections: stats.cost_rejections as u64,
            invariant_rejections: stats.invariant_rejections as u64,
            quarantined_candidates: stats.quarantined_candidates as u64,
            checkpoints_written: stats.checkpoints_written as u64,
            checkpoint_failures: stats.checkpoint_failures as u64,
        },
        pareto: pareto.points().to_vec(),
        seen: seen.snapshot(),
        quarantine: quarantine.entries(),
        best_order,
        ftree_nodes,
        base_record,
        eval_record,
        next_seq,
        frontier,
        driver,
        mcts,
    };
    ckpt.write_to(&policy.path)
}

/// Strikes `family` and, once the family is quarantined, purges its
/// entries from the evaluation cache — a distrusted rule's cached
/// results must not resurrect through future hash hits. Returns the
/// number of cache entries purged.
fn strike_family(quarantine: &mut Quarantine, cache: &mut EvalCache, family: u8) -> usize {
    let before = quarantine.is_quarantined(family);
    quarantine.strike(family);
    let mut purged = 0;
    if quarantine.is_quarantined(family) {
        purged = cache.purge_family(family);
        if !before {
            core_obs().quarantined_families.inc();
            magis_obs::event!(
                "magis_core",
                "quarantine",
                family = rules::family_name(family),
            );
        }
    }
    purged
}

/// The strategy-agnostic search machinery handed to a
/// [`crate::driver::SearchDriver`]: deterministic candidate generation
/// and parallel evaluation, incumbent/Pareto/timeline bookkeeping,
/// quarantine, the evaluation cache, stop probes, progress reporting,
/// and checkpoint cadence. One engine lives for the duration of one
/// [`optimize`] / [`resume`] call; the driver calls
/// [`Engine::admit_pop`] (greedy dedup only), [`Engine::begin`],
/// [`Engine::evaluate`], and [`Engine::boundary`] for every expansion,
/// and the engine guarantees the determinism, sandboxing, and
/// observability contracts are identical for every strategy.
pub struct Engine<'a> {
    cfg: &'a OptimizerConfig,
    start: Instant,
    threads: usize,
    eval_cap: usize,
    candidate_limit: usize,
    seed_cost: (u64, f64),
    driver_kind: DriverKind,
    stats: OptimizerStats,
    timeline: SearchTimeline,
    pareto: ParetoSet,
    history: Vec<ProgressPoint>,
    best: MState,
    seen: ShardedSet,
    quarantine: Quarantine,
    eval_cache: EvalCache,
    evals_at_last_ckpt: usize,
    stop: Option<StopReason>,
    /// Start of the current expansion, for the wall-clock histogram
    /// and trace span emitted at the boundary.
    exp_t0: Instant,
    last_candidates: usize,
    last_merged: usize,
}

impl<'a> Engine<'a> {
    /// Cooperative stop probe shared by the loop head and the fan-out
    /// workers: cancellation, then the hard deadline, then the soft
    /// budget (the returned reason reflects that priority).
    fn probe_stop(cfg: &OptimizerConfig, start: Instant) -> Option<StopReason> {
        if cfg.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopReason::Cancelled);
        }
        let elapsed = start.elapsed();
        if cfg.search_budget.wall_limit.is_some_and(|w| elapsed > w) {
            return Some(StopReason::Deadline);
        }
        if elapsed > cfg.budget {
            return Some(StopReason::BudgetExpired);
        }
        None
    }

    /// Loop-head stop check: wall-clock probes first, then the
    /// evaluation caps. Records the stop reason for the post-loop
    /// accounting and returns `true` when the search must end.
    fn should_stop(&mut self) -> bool {
        if let Some(reason) = Self::probe_stop(self.cfg, self.start) {
            self.stop = Some(reason);
            return true;
        }
        if self.stats.evaluated >= self.eval_cap || self.stats.evaluated >= self.candidate_limit {
            self.stop = Some(StopReason::EvalCapReached);
            return true;
        }
        false
    }

    /// The active objective (drivers score and order states with it).
    pub fn objective(&self) -> Objective {
        self.cfg.objective
    }

    /// The seed state's `(peak, latency)` cost — the baseline for
    /// relative rewards.
    pub fn seed_cost(&self) -> (u64, f64) {
        self.seed_cost
    }

    /// Hashes a popped state and inserts it into the seen-set.
    /// Returns `false` (counting a filtered duplicate) when the state
    /// was already expanded — the greedy driver skips such pops
    /// without an expansion boundary. Drivers whose frontier never
    /// revisits states (MCTS) do not call this.
    pub fn admit_pop(&mut self, state: &MState) -> bool {
        let t0 = Instant::now();
        let h = graph_hash(&state.eval.graph);
        self.stats.hash_time += t0.elapsed();
        if !self.seen.insert(h) {
            self.stats.filtered += 1;
            core_obs().filtered.inc();
            return false;
        }
        true
    }

    /// Begins an expansion of `state`: counts it, beats the heartbeat,
    /// re-runs the F-Tree analysis if the state is stale, then
    /// generates the candidate batch — quarantine-filtered and sorted
    /// by [`Transform::sort_key`] so the fan-out order (and therefore
    /// the whole trajectory) is a pure function of the state.
    pub fn begin(&mut self, state: &mut MState) -> Vec<Transform> {
        let obs = core_obs();
        self.stats.expanded += 1;
        obs.expansions.inc();
        if let Some(tok) = &self.cfg.cancel {
            tok.beat();
        }
        self.exp_t0 = Instant::now();
        if state.tree_stale {
            analyze(state, self.cfg);
        }

        let t0 = Instant::now();
        let mut candidates = rules::generate(state, &self.cfg.rules);
        // Quarantined rule families stop being explored entirely.
        let before = candidates.len();
        candidates.retain(|t| !self.quarantine.is_quarantined(t.sort_key().0));
        let dropped = before - candidates.len();
        self.stats.quarantined_candidates += dropped;
        obs.quarantined_candidates.add(dropped as u64);
        // Fix the batch order before the fan-out: the merge in
        // `evaluate` consumes results in this order, making the
        // trajectory independent of thread count and generation order.
        candidates.sort_by_key(Transform::sort_key);
        self.stats.trans_time += t0.elapsed();
        self.stats.candidates += candidates.len();
        obs.candidates.add(candidates.len() as u64);
        for t in &candidates {
            self.timeline.family_mut(rules::family_name(t.sort_key().0)).proposed += 1;
        }
        self.last_candidates = candidates.len();
        candidates
    }

    /// Evaluates candidates of `state` and merges the outcomes in
    /// candidate order on this thread — incumbent updates, Pareto
    /// inserts, cache bookkeeping, quarantine strikes, and all metrics
    /// happen here, exactly as in the pre-driver monolithic loop.
    ///
    /// `only` evaluates a single candidate inline (MCTS rollouts);
    /// `None` fans the whole batch out across the configured worker
    /// threads. `dedup` rejects children whose graph hash is already
    /// in the seen-set (greedy); MCTS passes `false` because
    /// transpositions are legitimate tree branches.
    ///
    /// For every successfully evaluated child the `retain` callback
    /// decides whether the driver keeps it (queue push / tree node):
    /// it receives the candidate index, the child (by value), its
    /// cost, and the incumbent cost *after* any incumbent update from
    /// this child. Returning `true` records an accept (metrics, trace
    /// span, timeline); `false` records a `dominated` reject.
    ///
    /// Returns the number of merged (evaluated) candidates.
    pub fn evaluate(
        &mut self,
        state: &MState,
        candidates: &[Transform],
        only: Option<usize>,
        dedup: bool,
        retain: &mut dyn FnMut(usize, MState, (u64, f64), (u64, f64)) -> bool,
    ) -> usize {
        let obs = core_obs();
        let exp_no_u64 = self.stats.expanded as u64;
        let cfg = self.cfg;
        let start = self.start;
        // How many evaluations may still be merged under the cap
        // (saturating: an MCTS rollout chain may overshoot the cap
        // within one driver step before the loop head stops it).
        let remaining = self.eval_cap.saturating_sub(self.stats.evaluated);
        // Injection keys depend only on (expansion, candidate index):
        // identical across thread counts and across reruns.
        let plan = cfg.fault_plan.as_ref();
        let fault_for = |i: usize| plan.map(|p| (p, (exp_no_u64 << 20) | (i as u64 & 0xfffff)));
        let stop_now = move || Self::probe_stop(cfg, start);

        let t_wall = Instant::now();
        // The cache is frozen (shared borrow) for the whole fan-out:
        // workers see identical contents regardless of thread count or
        // completion order; insertions happen below, at the merge.
        let eval_cache = &self.eval_cache;
        let outcomes: Vec<(usize, CandOutcome)> = if let Some(i) = only {
            // Single-candidate path (rollouts): always inline on the
            // driver thread, whatever the thread count.
            let o = if stop_now().is_some() || remaining == 0 {
                CandOutcome::Skipped
            } else {
                evaluate_candidate(state, &candidates[i], &cfg.ctx, eval_cache, fault_for(i), cfg.paranoia)
            };
            vec![(i, o)]
        } else if self.threads > 1 {
            parallel::par_map(self.threads, candidates, |i, t| {
                if stop_now().is_some() {
                    CandOutcome::Skipped
                } else {
                    evaluate_candidate(state, t, &cfg.ctx, eval_cache, fault_for(i), cfg.paranoia)
                }
            })
            .into_iter()
            .enumerate()
            .collect()
        } else {
            // Inline path: identical semantics, but the eval cap can
            // stop work early instead of discarding results at merge.
            let mut out = Vec::with_capacity(candidates.len());
            let mut done = 0usize;
            for (i, t) in candidates.iter().enumerate() {
                if stop_now().is_some() || done >= remaining {
                    out.push(CandOutcome::Skipped);
                    break;
                }
                let o = evaluate_candidate(state, t, &cfg.ctx, eval_cache, fault_for(i), cfg.paranoia);
                if matches!(o, CandOutcome::Evaluated { .. }) {
                    done += 1;
                }
                out.push(o);
            }
            out.into_iter().enumerate().collect()
        };
        self.stats.eval_wall_time += t_wall.elapsed();

        // Deterministic merge: consume outcomes in candidate order on
        // this thread only. Incumbent updates, retain decisions,
        // quarantine strikes, the eval cap — and every metric, trace
        // record, and timeline entry — all happen here.
        let parent_cost = state.cost();
        let mut merged = 0usize;
        for (i, o) in outcomes {
            if matches!(o, CandOutcome::Skipped) {
                break;
            }
            if merged >= remaining {
                // Workers may over-evaluate past the cap; the merge
                // discards the excess — of *every* outcome kind, so
                // counters and quarantine strikes match `threads == 1`,
                // where post-cap candidates never run at all.
                break;
            }
            let family = candidates[i].sort_key().0;
            let fam_name = rules::family_name(family);
            // Re-attributes the worker-measured phase durations as a
            // merge-thread span, keeping the record set deterministic.
            let eval_span = |outcome: &'static str, dur: Duration| {
                if magis_obs::trace::enabled() {
                    magis_obs::trace::span_with_dur(
                        "magis_core",
                        "candidate_eval",
                        dur,
                        magis_obs::fields!(
                            expansion = exp_no_u64,
                            candidate = i,
                            family = fam_name,
                            outcome = outcome,
                        ),
                    );
                }
            };
            let timeline = &mut self.timeline;
            let mut reject = |reason: &'static str, dur: Duration| {
                outcome_counter(family, reason).inc();
                eval_span(reason, dur);
                magis_obs::event!(
                    "magis_core",
                    "reject",
                    expansion = exp_no_u64,
                    candidate = i,
                    family = fam_name,
                    reason = reason,
                );
                let f = timeline.family_mut(fam_name);
                f.rejected += 1;
                f.eval_time_us += dur.as_micros() as u64;
            };
            match o {
                CandOutcome::Skipped => unreachable!("handled above"),
                CandOutcome::Failed { trans, sched_sim } => {
                    self.stats.trans_time += trans;
                    self.stats.sched_sim_time += sched_sim;
                    reject("apply-failed", trans + sched_sim);
                }
                CandOutcome::Panicked { trans } => {
                    self.stats.trans_time += trans;
                    self.stats.panicked += 1;
                    obs.panicked.inc();
                    reject("panicked", trans);
                    let purged = strike_family(&mut self.quarantine, &mut self.eval_cache, family);
                    self.stats.eval_cache_purged += purged;
                    obs.eval_cache_purged.add(purged as u64);
                }
                CandOutcome::BadCost { trans, sched_sim } => {
                    self.stats.trans_time += trans;
                    self.stats.sched_sim_time += sched_sim;
                    self.stats.cost_rejections += 1;
                    obs.cost_rejections.inc();
                    reject("bad-cost", trans + sched_sim);
                }
                CandOutcome::Invalid { trans, sched_sim } => {
                    self.stats.trans_time += trans;
                    self.stats.sched_sim_time += sched_sim;
                    self.stats.invariant_rejections += 1;
                    obs.invariant_rejections.inc();
                    reject("invalid", trans + sched_sim);
                    let purged = strike_family(&mut self.quarantine, &mut self.eval_cache, family);
                    self.stats.eval_cache_purged += purged;
                    obs.eval_cache_purged.add(purged as u64);
                }
                CandOutcome::Evaluated { child, hash, cache_hit, tainted, trans, sched_sim, hash_t } => {
                    self.stats.trans_time += trans;
                    self.stats.sched_sim_time += sched_sim;
                    self.stats.hash_time += hash_t;
                    merged += 1;
                    self.stats.evaluated += 1;
                    obs.evaluated.inc();
                    if let Some(tok) = &cfg.cancel {
                        tok.beat();
                    }
                    let eval_dur = trans + sched_sim + hash_t;

                    // Cache accounting + insertion happen here — on the
                    // merge thread, in candidate order — so the cache's
                    // contents and counters are deterministic.
                    if cache_hit {
                        self.stats.eval_cache_hits += 1;
                        obs.eval_cache_hits.inc();
                        // LRU refresh: recency only ever advances here,
                        // on the merge thread in candidate order, so
                        // eviction stays bit-identical across thread
                        // counts. No-op if a strike purged the entry
                        // earlier in this merge pass.
                        self.eval_cache.touch(hash, cfg.ctx.mem_objective);
                        magis_obs::event!(
                            "magis_core",
                            "eval_cache_hit",
                            expansion = exp_no_u64,
                            candidate = i,
                            family = fam_name,
                        );
                    } else {
                        self.stats.eval_cache_misses += 1;
                        obs.eval_cache_misses.inc();
                        // Per-candidate instrumentation is suppressed in
                        // the evaluation sandbox; re-attribute the
                        // incremental-scheduling counters here (merge
                        // thread, candidate order -> deterministic).
                        if let Some(inc) = child.eval.inc {
                            obs.incremental_evals.inc();
                            if inc.carried_won {
                                obs.incremental_carried_wins.inc();
                            }
                            obs.incremental_window.observe(inc.window as f64);
                        }
                        // Tainted children (post-eval fault injections)
                        // and quarantined families are never cached.
                        if !tainted && !self.quarantine.is_quarantined(family) {
                            let evicted = self.eval_cache.insert(
                                hash,
                                (*child).clone(),
                                family,
                                cfg.ctx.mem_objective,
                            );
                            self.stats.eval_cache_evictions += evicted;
                            obs.eval_cache_evictions.add(evicted as u64);
                        }
                    }

                    // Cheap duplicate pre-filter before the retain
                    // decision (greedy only: MCTS treats transpositions
                    // as legitimate tree branches).
                    if dedup && self.seen.contains(hash) {
                        self.stats.filtered += 1;
                        obs.filtered.inc();
                        reject("duplicate", eval_dur);
                        continue;
                    }

                    let cost = child.cost();
                    let leads = cfg.objective.better_than(cost, self.best.cost(), 1.0);
                    // Invariant gate: a state may only become the
                    // incumbent after its graph, schedule, and memory
                    // accounting re-validate. A violator is dropped
                    // entirely (not queued, not on the frontier) and
                    // strikes its rule family.
                    if leads
                        && cfg.paranoia == ParanoiaLevel::Incumbent
                        && check_invariants(&child, &cfg.ctx).is_err()
                    {
                        self.stats.invariant_rejections += 1;
                        obs.invariant_rejections.inc();
                        reject("invalid", eval_dur);
                        let purged = strike_family(&mut self.quarantine, &mut self.eval_cache, family);
                        self.stats.eval_cache_purged += purged;
                        obs.eval_cache_purged.add(purged as u64);
                        continue;
                    }
                    self.pareto.insert(cost.0, cost.1);
                    if leads {
                        self.best = (*child).clone();
                        self.history.push(ProgressPoint {
                            elapsed: start.elapsed().as_secs_f64(),
                            peak_bytes: cost.0,
                            latency: cost.1,
                        });
                        obs.incumbent_improvements.inc();
                        magis_obs::event!(
                            "magis_core",
                            "incumbent",
                            expansion = exp_no_u64,
                            peak_bytes = cost.0,
                            latency = cost.1,
                        );
                    }
                    // The driver decides retention; the incumbent cost
                    // it sees reflects any update from this very child
                    // (the greedy δ-test reads the incumbent as updated
                    // mid-batch, exactly like Algorithm 3).
                    let best_cost = self.best.cost();
                    if retain(i, *child, cost, best_cost) {
                        obs.queue_pushes.inc();
                        outcome_counter(family, "accept").inc();
                        eval_span("accept", eval_dur);
                        magis_obs::event!(
                            "magis_core",
                            "accept",
                            expansion = exp_no_u64,
                            candidate = i,
                            family = fam_name,
                            peak_bytes = cost.0,
                            latency = cost.1,
                        );
                        let f = self.timeline.family_mut(fam_name);
                        f.accepted += 1;
                        f.mem_delta_bytes += cost.0 as i64 - parent_cost.0 as i64;
                        f.lat_delta += cost.1 - parent_cost.1;
                        f.eval_time_us += eval_dur.as_micros() as u64;
                    } else {
                        // Evaluated but not retained by the driver
                        // (dominated by the δ-relaxed incumbent).
                        reject("dominated", eval_dur);
                    }
                }
            }
        }
        self.last_merged = merged;
        merged
    }

    /// Expansion-boundary bookkeeping: timeline point + Pareto record,
    /// gauges, the expansion histogram and trace span, the progress
    /// snapshot, and the periodic checkpoint (calling `snapshot` for
    /// the driver's frontier when the policy captures one). Drivers
    /// call this exactly once per completed step.
    pub fn boundary(&mut self, frontier_size: u64, snapshot: &mut dyn FnMut() -> DriverFrontier) {
        let obs = core_obs();
        let exp_no_u64 = self.stats.expanded as u64;
        let front = self.pareto.front();
        self.timeline.record_pareto(exp_no_u64, front.clone());
        self.timeline.record_point(TimelinePoint {
            expansion: exp_no_u64,
            evaluated: self.stats.evaluated as u64,
            best_peak_bytes: self.best.eval.peak_bytes,
            best_latency: self.best.eval.latency,
            frontier_size,
            pareto_size: front.len() as u64,
            elapsed_us: self.start.elapsed().as_micros() as u64,
        });
        obs.best_peak_bytes.set(self.best.eval.peak_bytes as f64);
        obs.best_latency.set(self.best.eval.latency);
        obs.frontier_size.set(frontier_size as f64);
        obs.eval_cache_size.set(self.eval_cache.len() as f64);
        obs.expansion_seconds.observe_duration(self.exp_t0.elapsed());
        if let Some(hook) = &self.cfg.progress {
            // Reported after the whole batch merged, on the merge
            // thread, outside any suppression gate — snapshot contents
            // are deterministic (see the determinism contract).
            hook.0.report(&ProgressSnapshot {
                expansion: exp_no_u64,
                evaluated: self.stats.evaluated as u64,
                best_peak_bytes: self.best.eval.peak_bytes,
                best_planned_peak_bytes: self.best.eval.plan.as_ref().map(|p| p.planned_peak_bytes),
                best_latency: self.best.eval.latency,
                frontier_size,
                pareto_size: front.len() as u64,
                eval_cache_hits: self.stats.eval_cache_hits as u64,
                phase: "search",
            });
        }
        if magis_obs::trace::enabled() {
            magis_obs::trace::span_with_dur(
                "magis_core",
                "expansion",
                self.exp_t0.elapsed(),
                magis_obs::fields!(
                    expansion = exp_no_u64,
                    candidates = self.last_candidates,
                    merged = self.last_merged,
                    frontier = frontier_size,
                ),
            );
        }

        if let Some(policy) = &self.cfg.checkpoint {
            if self.stats.evaluated - self.evals_at_last_ckpt >= policy.every_evals {
                self.evals_at_last_ckpt = self.stats.evaluated;
                let frontier = if policy.frontier { Some(snapshot()) } else { None };
                let ok = write_checkpoint(
                    policy,
                    &self.best,
                    self.seed_cost,
                    self.cfg.seed,
                    &self.pareto,
                    &self.seen,
                    &self.quarantine,
                    &self.stats,
                    self.driver_kind,
                    frontier,
                )
                .is_ok();
                if ok {
                    self.stats.checkpoints_written += 1;
                    obs.checkpoints_written.inc();
                } else {
                    // Non-fatal: a full disk must not kill the search.
                    self.stats.checkpoint_failures += 1;
                    obs.checkpoint_failures.inc();
                }
                magis_obs::event!(
                    "magis_core",
                    "checkpoint",
                    expansion = exp_no_u64,
                    ok = ok,
                );
            }
        }
    }
}

fn run_search(init: MState, seed: SearchSeed, cfg: &OptimizerConfig) -> OptimizeResult {
    let start = Instant::now();
    let threads = cfg.threads.max(1);
    let obs = core_obs();
    obs.searches.inc();
    let stats = OptimizerStats {
        threads,
        driver: seed.driver,
        resumed: seed.resumed,
        expanded: seed.counters.expanded as usize,
        candidates: seed.counters.candidates as usize,
        evaluated: seed.counters.evaluated as usize,
        filtered: seed.counters.filtered as usize,
        panicked: seed.counters.panicked as usize,
        cost_rejections: seed.counters.cost_rejections as usize,
        invariant_rejections: seed.counters.invariant_rejections as usize,
        quarantined_candidates: seed.counters.quarantined_candidates as usize,
        checkpoints_written: seed.counters.checkpoints_written as usize,
        checkpoint_failures: seed.counters.checkpoint_failures as usize,
        ..OptimizerStats::default()
    };
    if seed.resumed {
        // Continue cumulative metrics from the checkpointed counters so
        // a resumed run's snapshot covers the whole logical search.
        obs.resumes.inc();
        let c = &seed.counters;
        obs.expansions.add(c.expanded);
        obs.candidates.add(c.candidates);
        obs.evaluated.add(c.evaluated);
        obs.filtered.add(c.filtered);
        obs.panicked.add(c.panicked);
        obs.cost_rejections.add(c.cost_rejections);
        obs.invariant_rejections.add(c.invariant_rejections);
        obs.quarantined_candidates.add(c.quarantined_candidates);
        obs.checkpoints_written.add(c.checkpoints_written);
        obs.checkpoint_failures.add(c.checkpoint_failures);
        magis_obs::event!(
            "magis_core",
            "resume",
            expanded = c.expanded,
            evaluated = c.evaluated,
        );
    }
    let timeline = SearchTimeline::new();
    let mut pareto = ParetoSet::new();
    for (m, l) in seed.pareto {
        pareto.insert(m, l);
    }
    let mut history = Vec::new();

    let (init_peak, init_lat) = init.cost();
    pareto.insert(init_peak, init_lat);
    history.push(ProgressPoint {
        elapsed: start.elapsed().as_secs_f64(),
        peak_bytes: init_peak,
        latency: init_lat,
    });

    let best = init.clone();
    // Trajectory-exact resume: a frontier-bearing checkpoint restores
    // the driver frontier, seen-set, and sequence counter verbatim —
    // the incumbent is NOT re-pushed (its hash stays in the seen-set,
    // as it was already expanded when the checkpoint was written).
    let exact_resume = !seed.frontier.is_empty();
    // Written only between fan-outs (at pops), read-only during a
    // batch; sharded so workers could share it without contention.
    let seen = ShardedSet::default();
    if exact_resume {
        for h in seed.seen {
            seen.insert(h);
        }
    } else {
        // Legacy-resume trap: the incumbent's own hash is in the
        // checkpointed seen-set (it was inserted when first expanded).
        // Preloading it verbatim would make the first pop filter the
        // resumed incumbent as a duplicate and end the search
        // immediately.
        let init_hash = graph_hash(&init.eval.graph);
        for h in seed.seen {
            if h != init_hash {
                seen.insert(h);
            }
        }
    }
    let mut quarantine = Quarantine::new(cfg.quarantine_threshold);
    quarantine.load(&seed.quarantine);
    // Not restored on resume: checkpoints don't persist the cache, so
    // a resumed search starts cold (the first duplicate re-primes it).
    let eval_cache = EvalCache::new(cfg.eval_cache);

    // The driver owns the strategy state (greedy queue or MCTS tree);
    // everything else — evaluation, bookkeeping, observability,
    // checkpointing — lives on the engine below.
    let mut driver: Box<dyn SearchDriver> = match seed.driver {
        DriverKind::Greedy => Box::new(GreedyDriver::new(
            cfg,
            init,
            seed.frontier,
            seed.next_seq,
            exact_resume,
        )),
        DriverKind::Mcts => match (&seed.mcts, exact_resume) {
            // Trajectory-exact resume: tree topology, statistics, and
            // RNG state come back verbatim.
            (Some(meta), true) => Box::new(MctsDriver::resume(seed.frontier, meta)),
            // Fresh search (or legacy non-frontier resume): a new tree
            // rooted at the incumbent, RNG reseeded from the config.
            _ => Box::new(MctsDriver::new(cfg, init)),
        },
    };

    let evals_at_last_ckpt = stats.evaluated;
    let mut engine = Engine {
        cfg,
        start,
        threads,
        // The legacy `max_evals` knob truncates evaluation batches
        // mid-expansion. The `SearchBudget` candidate limit
        // deliberately does NOT: it is checked only at expansion
        // boundaries (in `should_stop`), so every expansion merges
        // atomically and the evaluated count may overshoot the limit
        // by one expansion's batch. That boundary-only semantics is
        // what makes the limit the bit-exact kill/resume knob — a run
        // stopped at limit k and resumed to limit n passes through
        // exactly the same boundary states as an uninterrupted run to
        // n, whereas a mid-expansion truncation would discard sibling
        // candidates that the uninterrupted run evaluates.
        eval_cap: cfg.max_evals,
        candidate_limit: cfg.search_budget.candidate_limit.unwrap_or(usize::MAX),
        seed_cost: seed.seed_cost,
        driver_kind: seed.driver,
        stats,
        timeline,
        pareto,
        history,
        best,
        seen,
        quarantine,
        eval_cache,
        evals_at_last_ckpt,
        stop: None,
        exp_t0: start,
        last_candidates: 0,
        last_merged: 0,
    };

    loop {
        // Checked *before* the driver steps: a deadline/budget/cap
        // stop leaves the driver's frontier intact, so a checkpoint
        // written at the stop captures the complete resumable state.
        if engine.should_stop() {
            break;
        }
        if driver.step(&mut engine) == StepOutcome::Exhausted {
            break;
        }
    }

    engine.stats.stop_reason = engine.stop.unwrap_or_else(|| {
        // The frontier ran dry. If rule families were quarantined
        // along the way, faults shrank the reachable space: report a
        // fault storm. (Quarantined candidate *filtering* may never
        // have happened — a total storm kills every child before a
        // second expansion — so the family list, not the filter
        // counter, is the signal.)
        if engine.quarantine.quarantined_families().is_empty() {
            StopReason::QueueExhausted
        } else {
            StopReason::FaultStorm
        }
    });

    engine.stats.quarantine_strikes = engine.quarantine.entries();
    engine.stats.quarantined_families = engine.quarantine.quarantined_families();

    // Frontier checkpoints are exact in-flight snapshots: the final one
    // is written *before* the polish below, and the resumed run
    // re-polishes at its own true end — that keeps kill/resume
    // trajectories bit-identical to the uninterrupted run. Legacy
    // (non-frontier) policies keep recording the polished incumbent.
    let frontier_mode = cfg.checkpoint.as_ref().is_some_and(|p| p.frontier);
    if frontier_mode {
        let policy = cfg.checkpoint.as_ref().expect("frontier_mode implies a policy");
        let ok = write_checkpoint(
            policy,
            &engine.best,
            engine.seed_cost,
            cfg.seed,
            &engine.pareto,
            &engine.seen,
            &engine.quarantine,
            &engine.stats,
            engine.driver_kind,
            Some(driver.frontier_snapshot()),
        )
        .is_ok();
        if ok {
            engine.stats.checkpoints_written += 1;
            obs.checkpoints_written.inc();
        } else {
            engine.stats.checkpoint_failures += 1;
            obs.checkpoint_failures.inc();
        }
        magis_obs::event!("magis_core", "checkpoint", ok = ok, at = "final",);
    }

    // Final polish: reschedule the incumbent with the full-quality beam
    // and keep whichever is better.
    let polished = engine.best.rescheduled(&cfg.ctx);
    if cfg.objective.better_than(polished.cost(), engine.best.cost(), 1.0)
        && (cfg.paranoia == ParanoiaLevel::Off || check_invariants(&polished, &cfg.ctx).is_ok())
    {
        let (p_peak, p_lat) = polished.cost();
        engine.pareto.insert(p_peak, p_lat);
        engine.best = polished;
    }
    if !frontier_mode {
        if let Some(policy) = &cfg.checkpoint {
            let ok = write_checkpoint(
                policy,
                &engine.best,
                engine.seed_cost,
                cfg.seed,
                &engine.pareto,
                &engine.seen,
                &engine.quarantine,
                &engine.stats,
                engine.driver_kind,
                None,
            )
            .is_ok();
            if ok {
                engine.stats.checkpoints_written += 1;
                obs.checkpoints_written.inc();
            } else {
                engine.stats.checkpoint_failures += 1;
                obs.checkpoint_failures.inc();
            }
            magis_obs::event!("magis_core", "checkpoint", ok = ok, at = "final",);
        }
    }
    magis_obs::event!(
        "magis_core",
        "stop",
        reason = engine.stats.stop_reason.to_string(),
        expanded = engine.stats.expanded,
        evaluated = engine.stats.evaluated,
    );
    obs.best_peak_bytes.set(engine.best.eval.peak_bytes as f64);
    obs.best_latency.set(engine.best.eval.latency);
    if let Some(hook) = &cfg.progress {
        // Terminal snapshot: the post-polish incumbent. Deterministic
        // like every other snapshot — the polish itself is.
        hook.0.report(&ProgressSnapshot {
            expansion: engine.stats.expanded as u64,
            evaluated: engine.stats.evaluated as u64,
            best_peak_bytes: engine.best.eval.peak_bytes,
            best_planned_peak_bytes: engine.best.eval.plan.as_ref().map(|p| p.planned_peak_bytes),
            best_latency: engine.best.eval.latency,
            frontier_size: driver.frontier_len(),
            pareto_size: engine.pareto.front().len() as u64,
            eval_cache_hits: engine.stats.eval_cache_hits as u64,
            phase: "done",
        });
    }
    engine.timeline.memory_profile =
        memory_profile(&engine.best.eval.graph, &engine.best.eval.order).step_bytes;
    // Planner outcome for the timeline: the winning state's allocator
    // high-water mark and fragmentation overhead (zeros = planner off).
    if let Some(plan) = &engine.best.eval.plan {
        engine.timeline.planned_peak_bytes = plan.planned_peak_bytes;
        engine.timeline.fragmentation_ratio = plan.fragmentation_ratio();
    }
    OptimizeResult {
        best: engine.best,
        pareto: engine.pareto,
        history: engine.history,
        stats: engine.stats,
        timeline: engine.timeline,
    }
}

fn analyze(state: &mut MState, cfg: &OptimizerConfig) {
    if cfg.naive_fission {
        state.ftree = crate::ftree::FTree::build_naive(&state.base, 12, cfg.seed);
        state.tree_stale = false;
    } else {
        state.analyze(cfg.max_level);
    }
}

/// Convenience: optimize for minimum memory with a relative latency
/// budget `lat_factor` × the unoptimized latency (the §7.2.1 setting).
pub fn optimize_memory(g: Graph, lat_factor: f64, cfg_base: &OptimizerConfig) -> OptimizeResult {
    let init = MState::initial(g.clone(), &cfg_base.ctx);
    let mut cfg = cfg_base.clone();
    cfg.objective = Objective::MinMemory { lat_limit: init.eval.latency * lat_factor };
    optimize(g, &cfg)
}

/// Convenience: optimize for minimum latency with a relative memory
/// budget `mem_factor` × the unoptimized peak (the §7.2.2 setting).
pub fn optimize_latency(g: Graph, mem_factor: f64, cfg_base: &OptimizerConfig) -> OptimizeResult {
    let init = MState::initial(g.clone(), &cfg_base.ctx);
    let mut cfg = cfg_base.clone();
    cfg.objective = Objective::MinLatency {
        mem_limit: (init.eval.peak_bytes as f64 * mem_factor) as u64,
    };
    optimize(g, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_graph::builder::GraphBuilder;
    use magis_graph::grad::{append_backward, TrainOptions};
    use magis_graph::tensor::DType;
    use std::collections::BinaryHeap;

    fn train_mlp(depth: usize) -> Graph {
        let mut b = GraphBuilder::new(DType::F32);
        let mut cur = b.input([256, 128], "x");
        for i in 0..depth {
            let w = b.weight([128, 128], &format!("w{i}"));
            let h = b.matmul(cur, w);
            cur = b.gelu(h);
        }
        let wl = b.weight([128, 16], "wl");
        let logits = b.matmul(cur, wl);
        let y = b.label([256], "y");
        let loss = b.cross_entropy(logits, y);
        append_backward(b.finish(), loss, &TrainOptions::default()).unwrap().graph
    }

    fn quick_cfg(objective: Objective) -> OptimizerConfig {
        OptimizerConfig::new(objective)
            .with_budget(Duration::from_secs(20))
            .with_max_evals(400)
    }

    #[test]
    fn memory_mode_reduces_peak_within_latency_budget() {
        let g = train_mlp(4);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let cfg = quick_cfg(Objective::MinMemory { lat_limit: init.eval.latency * 1.10 });
        let res = optimize(g, &cfg);
        assert!(
            res.best.eval.peak_bytes < init.eval.peak_bytes,
            "optimizer reduces peak: {} vs {}",
            res.best.eval.peak_bytes,
            init.eval.peak_bytes
        );
        assert!(res.best.eval.latency <= init.eval.latency * 1.10 * 1.0001);
        assert!(res.stats.evaluated > 0);
        assert!(res.history.len() >= 2, "incumbent improved at least once");
    }

    #[test]
    fn latency_mode_respects_memory_limit() {
        let g = train_mlp(4);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let limit = (init.eval.peak_bytes as f64 * 0.8) as u64;
        let cfg = quick_cfg(Objective::MinLatency { mem_limit: limit });
        let res = optimize(g, &cfg);
        assert!(
            res.best.eval.peak_bytes <= limit,
            "memory constraint met: {} <= {limit}",
            res.best.eval.peak_bytes
        );
    }

    #[test]
    fn progress_snapshots_are_deterministic_across_thread_counts() {
        struct Collect(std::sync::Mutex<Vec<ProgressSnapshot>>);
        impl ProgressSink for Collect {
            fn report(&self, snap: &ProgressSnapshot) {
                self.0.lock().unwrap().push(snap.clone());
            }
        }
        let g = train_mlp(3);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.10 };
        let run = |threads: usize| {
            let sink = Arc::new(Collect(std::sync::Mutex::new(Vec::new())));
            let cfg = quick_cfg(obj)
                .with_max_evals(60)
                .with_threads(threads)
                .with_progress(sink.clone());
            let res = optimize(g.clone(), &cfg);
            let snaps = sink.0.lock().unwrap().clone();
            (res, snaps)
        };
        let (res1, snaps1) = run(1);
        let (res4, snaps4) = run(4);
        assert!(snaps1.len() >= 2, "at least one boundary + the final snapshot");
        assert_eq!(snaps1, snaps4, "snapshot sequences are bit-identical");
        assert_eq!(res1.best.eval.peak_bytes, res4.best.eval.peak_bytes);
        // Snapshots are ordered: evaluated counts never decrease, the
        // incumbent objective never worsens, and the last is terminal.
        for w in snaps1.windows(2) {
            assert!(w[1].evaluated >= w[0].evaluated);
            assert!(w[1].best_peak_bytes <= w[0].best_peak_bytes);
        }
        assert_eq!(snaps1.last().unwrap().phase, "done");
        assert_eq!(snaps1.last().unwrap().best_peak_bytes, res1.best.eval.peak_bytes);
    }

    #[test]
    fn hash_filter_counts_duplicates() {
        let g = train_mlp(3);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let cfg = quick_cfg(Objective::MinMemory { lat_limit: init.eval.latency * 1.5 });
        let res = optimize(g, &cfg);
        // Inverse rules (de-remat after remat etc.) guarantee revisits.
        assert!(res.stats.filtered > 0, "hash test filters duplicates");
    }

    #[test]
    fn naive_fission_is_no_better() {
        let g = train_mlp(4);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.10 };
        let smart = optimize(g.clone(), &quick_cfg(obj));
        let mut cfg = quick_cfg(obj);
        cfg.naive_fission = true;
        let naive = optimize(g, &cfg);
        // At toy scale random fission can get lucky within the eval
        // budget; the full ablation (Fig. 13) runs at realistic scale.
        // Here we only require the guided search to be competitive.
        assert!(
            smart.best.eval.peak_bytes as f64 <= naive.best.eval.peak_bytes as f64 * 1.15,
            "analysis-guided fission is competitive with random fission: {} vs {}",
            smart.best.eval.peak_bytes,
            naive.best.eval.peak_bytes
        );
    }

    #[test]
    fn objective_keys_and_dominance() {
        let obj = Objective::MinLatency { mem_limit: 100 };
        // Below the limit, memory is saturated: latency decides.
        assert!(obj.better_than((80, 1.0), (90, 2.0), 1.0));
        assert!(!obj.better_than((80, 2.0), (90, 1.0), 1.0));
        // Above the limit, memory decides first.
        assert!(obj.better_than((120, 9.0), (150, 1.0), 1.0));
        // The relaxed test admits slightly worse states.
        assert!(obj.better_than((80, 1.05), (80, 1.0), 1.1));
        assert!(!obj.better_than((80, 1.2), (80, 1.0), 1.1));

        let obj = Objective::MinMemory { lat_limit: 1.0 };
        assert!(obj.better_than((50, 0.5), (80, 0.9), 1.0));
        assert!(obj.better_than((90, 0.9), (50, 2.0), 1.0), "latency blowout loses");
        assert!(obj.satisfied(123, 0.9));
        assert!(!obj.satisfied(123, 1.1));
    }

    #[test]
    fn queue_orders_best_first() {
        let obj = Objective::MinMemory { lat_limit: 1.0 };
        let mut q: BinaryHeap<QueueEntry> = BinaryHeap::new();
        let g = train_mlp(2);
        let ctx = EvalContext::default();
        let s = MState::initial(g, &ctx);
        for (i, (m, l)) in [(100u64, 0.5), (50, 0.5), (70, 0.5)].iter().enumerate() {
            q.push(QueueEntry { key: obj.key(*m, *l), seq: i, state: s.clone() });
        }
        assert_eq!(q.pop().unwrap().key, obj.key(50, 0.5));
        assert_eq!(q.pop().unwrap().key, obj.key(70, 0.5));
    }

    #[test]
    fn pareto_front_is_monotone() {
        let g = train_mlp(3);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let cfg = quick_cfg(Objective::MinMemory { lat_limit: init.eval.latency * 1.3 });
        let res = optimize(g, &cfg);
        let front = res.pareto.front();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 > w[1].1);
        }
    }

    #[test]
    fn quarantine_thresholds() {
        let mut q = Quarantine::new(2);
        assert!(!q.is_quarantined(4));
        q.strike(4);
        assert!(!q.is_quarantined(4));
        q.strike(4);
        assert!(q.is_quarantined(4));
        assert_eq!(q.quarantined_families(), vec![4]);
        assert_eq!(q.entries(), vec![(4, 2)]);
        // Threshold 0 disables quarantining entirely.
        let mut q = Quarantine::new(0);
        for _ in 0..10 {
            q.strike(7);
        }
        assert!(!q.is_quarantined(7));
    }

    #[test]
    fn stop_reason_eval_cap() {
        let g = train_mlp(3);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let cfg = quick_cfg(Objective::MinMemory { lat_limit: init.eval.latency * 1.3 })
            .with_max_evals(30);
        let res = optimize(g, &cfg);
        assert_eq!(res.stats.stop_reason, StopReason::EvalCapReached);
        assert!(res.stats.evaluated <= 30);
    }

    #[test]
    fn eval_cache_hits_on_duplicate_states() {
        // Inverse rules (remat / de-remat etc.) revisit graphs, so a
        // search long enough to filter duplicates must also score
        // cache hits — each one skipping schedule + simulate.
        let g = train_mlp(3);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let cfg = quick_cfg(Objective::MinMemory { lat_limit: init.eval.latency * 1.5 });
        let res = optimize(g, &cfg);
        assert!(res.stats.eval_cache_hits > 0, "duplicate states served from cache");
        assert!(res.stats.eval_cache_misses > 0);
        assert_eq!(
            res.stats.eval_cache_hits + res.stats.eval_cache_misses,
            res.stats.evaluated,
            "every evaluated candidate is either a hit or a miss"
        );
    }

    #[test]
    fn eval_cache_disabled_matches_enabled_trajectory() {
        // Cache hits clone previously evaluated states that are
        // bit-identical to re-evaluation, so caching must not change
        // the search trajectory at all.
        let g = train_mlp(3);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.2 };
        let on = optimize(g.clone(), &quick_cfg(obj).with_threads(1).with_max_evals(120));
        let off = optimize(
            g,
            &quick_cfg(obj).with_threads(1).with_max_evals(120).with_eval_cache(0),
        );
        assert_eq!(on.best.eval.peak_bytes, off.best.eval.peak_bytes);
        assert_eq!(on.best.eval.latency.to_bits(), off.best.eval.latency.to_bits());
        assert_eq!(on.stats.evaluated, off.stats.evaluated);
        assert_eq!(off.stats.eval_cache_hits, 0, "disabled cache never hits");
    }

    #[test]
    fn quarantine_purges_eval_cache() {
        let g = train_mlp(2);
        let s = MState::initial(g, &EvalContext::default());
        let lv = magis_sim::MemObjective::Liveness;
        let mut cache = EvalCache::new(16);
        cache.insert(11, s.clone(), 4, lv);
        cache.insert(12, s.clone(), 4, lv);
        cache.insert(13, s, 5, lv);
        let mut q = Quarantine::new(2);
        assert_eq!(strike_family(&mut q, &mut cache, 4), 0, "below threshold: no purge");
        assert!(cache.get(11, lv).is_some());
        // Second strike quarantines family 4: its entries must go so a
        // later hash hit can't resurrect a distrusted rule's result.
        assert_eq!(strike_family(&mut q, &mut cache, 4), 2);
        assert!(cache.get(11, lv).is_none() && cache.get(12, lv).is_none());
        assert!(cache.get(13, lv).is_some(), "other families keep their entries");
    }

    #[test]
    fn paranoia_all_matches_default_when_healthy() {
        // With no faults, all paranoia levels must agree on the final
        // incumbent: validation only rejects corrupt states, and a
        // healthy pipeline produces none.
        let g = train_mlp(3);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.2 };
        let mk = |p: ParanoiaLevel| {
            quick_cfg(obj).with_max_evals(120).with_threads(1).with_paranoia(p)
        };
        let off = optimize(g.clone(), &mk(ParanoiaLevel::Off));
        let inc = optimize(g.clone(), &mk(ParanoiaLevel::Incumbent));
        let all = optimize(g, &mk(ParanoiaLevel::All));
        assert_eq!(off.best.eval.peak_bytes, inc.best.eval.peak_bytes);
        assert_eq!(off.best.eval.latency.to_bits(), inc.best.eval.latency.to_bits());
        assert_eq!(off.best.eval.peak_bytes, all.best.eval.peak_bytes);
        assert_eq!(off.best.eval.latency.to_bits(), all.best.eval.latency.to_bits());
        assert_eq!(inc.stats.invariant_rejections, 0);
        assert_eq!(all.stats.invariant_rejections, 0);
    }
}
