//! The M-Optimizer: the top-level greedy best-first search of
//! Algorithm 3, coordinating graph transformations (M-Rules) with
//! incremental scheduling.
//!
//! Two optimization modes are supported, as in §6.2:
//! * minimize latency under a memory limit (the algorithm as printed),
//! * minimize memory under a latency limit (the symmetric ordering).
//!
//! Duplicate states are pruned with the Weisfeiler–Lehman graph hash;
//! a relaxed dominance test (`δ = 1.1`) decides which children remain
//! on the queue. Per-phase wall-clock accounting reproduces the
//! optimization-time breakdown of Fig. 15.
//!
//! # Parallel candidate evaluation
//!
//! Each expansion generates all candidate transforms, sorts them by
//! [`Transform::sort_key`], evaluates the batch (apply → incremental
//! reschedule → simulate → hash) across up to
//! [`OptimizerConfig::threads`] scoped threads, then merges the
//! results back **in candidate order**: queue pushes, incumbent
//! updates, sequence numbers, and the `max_evals` cap are all applied
//! single-threaded at the merge. The search trajectory is therefore a
//! pure function of the input — `threads = 1` and `threads = N`
//! produce identical results (given a wall-clock budget generous
//! enough that neither run times out mid-batch).

use crate::pareto::ParetoSet;
use crate::rules::{self, RuleConfig, Transform};
use crate::state::{EvalContext, MState};
use magis_graph::algo::graph_hash;
use magis_graph::graph::Graph;
use magis_util::parallel;
use magis_util::sync::ShardedSet;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Optimization objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize latency subject to `peak_bytes ≤ mem_limit`.
    MinLatency {
        /// Peak-memory budget in bytes.
        mem_limit: u64,
    },
    /// Minimize peak memory subject to `latency ≤ lat_limit`.
    MinMemory {
        /// Latency budget in seconds.
        lat_limit: f64,
    },
}

impl Objective {
    /// Lexicographic key: smaller is better (`BetterThan`, Algorithm 3
    /// line 1, and its symmetric counterpart).
    fn key(&self, mem: u64, lat: f64) -> (f64, f64) {
        match *self {
            Objective::MinLatency { mem_limit } => (mem.max(mem_limit) as f64, lat),
            Objective::MinMemory { lat_limit } => (lat.max(lat_limit), mem as f64),
        }
    }

    /// `BetterThan(a, b, δ)`: is `a` better than `δ`-relaxed `b`?
    fn better_than(&self, a: (u64, f64), b: (u64, f64), delta: f64) -> bool {
        let ka = self.key(a.0, a.1);
        let kb = match *self {
            Objective::MinLatency { mem_limit } => {
                ((b.0 as f64 * delta).max(mem_limit as f64), b.1 * delta)
            }
            Objective::MinMemory { lat_limit } => {
                ((b.1 * delta).max(lat_limit), b.0 as f64 * delta)
            }
        };
        ka < kb
    }

    /// Whether a state satisfies the hard constraint.
    pub fn satisfied(&self, mem: u64, lat: f64) -> bool {
        match *self {
            Objective::MinLatency { mem_limit } => mem <= mem_limit,
            Objective::MinMemory { lat_limit } => lat <= lat_limit,
        }
    }
}

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// What to optimize.
    pub objective: Objective,
    /// Wall-clock search budget (the paper uses 3 minutes; scaled-down
    /// budgets reproduce the same dynamics on the simulator).
    pub budget: Duration,
    /// Hard cap on candidate evaluations (tests / determinism).
    pub max_evals: usize,
    /// F-Tree max-level `L` (Algorithm 1; default 4 per §7.1).
    pub max_level: usize,
    /// Relaxed-push coefficient `δ` (Algorithm 3; 1.1 per §6.2).
    pub delta: f64,
    /// Rule generation knobs (hot-spot filter = `naïve-sch-rule`
    /// ablation, TASO on/off).
    pub rules: RuleConfig,
    /// Evaluation machinery.
    pub ctx: EvalContext,
    /// `naïve-fission` ablation (§7.2.5): replace Algorithm 1 with
    /// random fission candidates.
    pub naive_fission: bool,
    /// Random seed for the naïve-fission ablation.
    pub seed: u64,
    /// Worker threads for candidate evaluation. `1` evaluates inline
    /// (no threads spawned); the default is the machine's available
    /// parallelism. Results are identical for every value — see the
    /// module docs.
    pub threads: usize,
}

impl OptimizerConfig {
    /// Defaults matching the paper's settings, for the given objective.
    pub fn new(objective: Objective) -> Self {
        OptimizerConfig {
            objective,
            budget: Duration::from_secs(10),
            max_evals: usize::MAX,
            max_level: 4,
            delta: 1.1,
            rules: RuleConfig::default(),
            ctx: EvalContext::default(),
            naive_fission: false,
            seed: 0x5eed,
            threads: parallel::available_threads(),
        }
    }

    /// Replaces the time budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Caps the number of candidate evaluations.
    pub fn with_max_evals(mut self, max_evals: usize) -> Self {
        self.max_evals = max_evals;
        self
    }

    /// Sets the evaluation worker-thread count (0 is treated as 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Per-phase time accounting (Fig. 15).
#[derive(Debug, Clone, Default)]
pub struct OptimizerStats {
    /// Time spent applying transformations. With `threads > 1` this is
    /// CPU time summed over workers, not wall-clock.
    pub trans_time: Duration,
    /// Time spent (incremental) scheduling + simulating. The paper
    /// separates "Sched." and "Simul."; our evaluation fuses them, so
    /// the split is attributed by sub-phase below. CPU time summed
    /// over workers.
    pub sched_sim_time: Duration,
    /// Time spent hashing/filtering duplicate graphs. CPU time summed
    /// over workers.
    pub hash_time: Duration,
    /// Wall-clock time spent inside candidate-evaluation fan-outs
    /// (compare against `trans_time + sched_sim_time + hash_time` to
    /// see the parallel speed-up).
    pub eval_wall_time: Duration,
    /// Worker threads the search was configured with.
    pub threads: usize,
    /// States popped from the queue.
    pub expanded: usize,
    /// Candidate transforms generated.
    pub candidates: usize,
    /// Candidates evaluated (scheduled + simulated).
    pub evaluated: usize,
    /// Duplicate states filtered by the hash test.
    pub filtered: usize,
}

/// A point on the search's progress curve.
#[derive(Debug, Clone, Copy)]
pub struct ProgressPoint {
    /// Elapsed seconds when the incumbent improved.
    pub elapsed: f64,
    /// Incumbent peak memory.
    pub peak_bytes: u64,
    /// Incumbent latency.
    pub latency: f64,
}

/// Result of [`optimize`].
#[derive(Debug)]
pub struct OptimizeResult {
    /// The best state found.
    pub best: MState,
    /// All `(mem, latency)` observations (Pareto raw material).
    pub pareto: ParetoSet,
    /// Incumbent-improvement history (Fig. 13 curves).
    pub history: Vec<ProgressPoint>,
    /// Phase timing and counters (Fig. 15).
    pub stats: OptimizerStats,
}

struct QueueEntry {
    key: (f64, f64),
    seq: usize,
    state: MState,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for best-first (smallest key).
        other
            .key
            .0
            .total_cmp(&self.key.0)
            .then_with(|| other.key.1.total_cmp(&self.key.1))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The outcome of evaluating one candidate transform. Produced by
/// workers (possibly out of order), consumed by the merge strictly in
/// candidate order.
enum CandOutcome {
    /// The wall-clock budget expired (or the serial eval cap was hit)
    /// before this candidate ran. The merge discards everything from
    /// the first such marker on, keeping the consumed prefix
    /// contiguous.
    Skipped,
    /// Apply or evaluation failed; the candidate is dropped.
    Failed { trans: Duration, sched_sim: Duration },
    /// A fully evaluated, hashed child state (boxed: this variant is
    /// ~20× the size of the others).
    Evaluated {
        child: Box<MState>,
        hash: u64,
        trans: Duration,
        sched_sim: Duration,
        hash_t: Duration,
    },
}

/// Apply → incremental reschedule + simulate → hash, with per-phase
/// CPU-time attribution. Pure w.r.t. shared search state, so it is
/// safe to run concurrently for independent candidates.
fn evaluate_candidate(state: &MState, t: &Transform, ctx: &EvalContext) -> CandOutcome {
    let t0 = Instant::now();
    let applied = match rules::apply(state, t) {
        Ok(a) => a,
        Err(_) => return CandOutcome::Failed { trans: t0.elapsed(), sched_sim: Duration::ZERO },
    };
    let trans = t0.elapsed();

    let t0 = Instant::now();
    let child = match MState::from_applied(applied, state, ctx) {
        Ok(c) => c,
        Err(_) => return CandOutcome::Failed { trans, sched_sim: t0.elapsed() },
    };
    let sched_sim = t0.elapsed();

    let t0 = Instant::now();
    let hash = graph_hash(&child.eval.graph);
    CandOutcome::Evaluated { child: Box::new(child), hash, trans, sched_sim, hash_t: t0.elapsed() }
}

// The fan-out shares states and the evaluation context across scoped
// threads; keep the core search types thread-safe by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MState>();
    assert_send_sync::<EvalContext>();
    assert_send_sync::<OptimizerConfig>();
    assert_send_sync::<Transform>();
};

/// Runs Algorithm 3 on `g`.
pub fn optimize(g: Graph, cfg: &OptimizerConfig) -> OptimizeResult {
    let start = Instant::now();
    let threads = cfg.threads.max(1);
    let mut stats = OptimizerStats { threads, ..OptimizerStats::default() };
    let mut pareto = ParetoSet::new();
    let mut history = Vec::new();

    let mut init = MState::initial(g, &cfg.ctx);
    analyze(&mut init, cfg);
    pareto.insert(init.eval.peak_bytes, init.eval.latency);
    history.push(ProgressPoint {
        elapsed: start.elapsed().as_secs_f64(),
        peak_bytes: init.eval.peak_bytes,
        latency: init.eval.latency,
    });

    let mut best = init.clone();
    // Written only between fan-outs (at pops), read-only during a
    // batch; sharded so workers could share it without contention.
    let seen = ShardedSet::default();
    let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();
    let mut seq = 0usize;
    queue.push(QueueEntry {
        key: cfg.objective.key(init.eval.peak_bytes, init.eval.latency),
        seq,
        state: init,
    });

    while let Some(entry) = queue.pop() {
        if start.elapsed() > cfg.budget || stats.evaluated >= cfg.max_evals {
            break;
        }
        let mut state = entry.state;
        let t0 = Instant::now();
        let h = graph_hash(&state.eval.graph);
        stats.hash_time += t0.elapsed();
        if !seen.insert(h) {
            stats.filtered += 1;
            continue;
        }
        stats.expanded += 1;
        if state.tree_stale {
            analyze(&mut state, cfg);
        }

        let t0 = Instant::now();
        let mut candidates = rules::generate(&state, &cfg.rules);
        // Fix the batch order before the fan-out: the merge below
        // consumes results in this order, making the trajectory
        // independent of thread count and generation order.
        candidates.sort_by_key(Transform::sort_key);
        stats.trans_time += t0.elapsed();
        stats.candidates += candidates.len();

        // How many evaluations may still be merged under `max_evals`.
        let remaining = cfg.max_evals - stats.evaluated;

        let t_wall = Instant::now();
        let outcomes: Vec<CandOutcome> = if threads > 1 {
            parallel::par_map(threads, &candidates, |_, t| {
                if start.elapsed() > cfg.budget {
                    CandOutcome::Skipped
                } else {
                    evaluate_candidate(&state, t, &cfg.ctx)
                }
            })
        } else {
            // Inline path: identical semantics, but the eval cap can
            // stop work early instead of discarding results at merge.
            let mut out = Vec::with_capacity(candidates.len());
            let mut done = 0usize;
            for t in &candidates {
                if start.elapsed() > cfg.budget || done >= remaining {
                    out.push(CandOutcome::Skipped);
                    break;
                }
                let o = evaluate_candidate(&state, t, &cfg.ctx);
                if matches!(o, CandOutcome::Evaluated { .. }) {
                    done += 1;
                }
                out.push(o);
            }
            out
        };
        stats.eval_wall_time += t_wall.elapsed();

        // Deterministic merge: consume outcomes in candidate order on
        // this thread only. Sequence numbers, incumbent updates, and
        // the eval cap all happen here.
        let mut merged = 0usize;
        for o in outcomes {
            match o {
                CandOutcome::Skipped => break,
                CandOutcome::Failed { trans, sched_sim } => {
                    stats.trans_time += trans;
                    stats.sched_sim_time += sched_sim;
                }
                CandOutcome::Evaluated { child, hash, trans, sched_sim, hash_t } => {
                    stats.trans_time += trans;
                    stats.sched_sim_time += sched_sim;
                    stats.hash_time += hash_t;
                    if merged >= remaining {
                        // Workers may over-evaluate past the cap; the
                        // merge discards the excess so the result
                        // matches `threads == 1` exactly.
                        break;
                    }
                    merged += 1;
                    stats.evaluated += 1;

                    // Cheap duplicate pre-filter before pushing.
                    if seen.contains(hash) {
                        stats.filtered += 1;
                        continue;
                    }

                    let cost = child.cost();
                    pareto.insert(cost.0, cost.1);
                    if cfg.objective.better_than(cost, best.cost(), 1.0) {
                        best = (*child).clone();
                        history.push(ProgressPoint {
                            elapsed: start.elapsed().as_secs_f64(),
                            peak_bytes: cost.0,
                            latency: cost.1,
                        });
                    }
                    if cfg.objective.better_than(cost, best.cost(), cfg.delta) {
                        seq += 1;
                        queue.push(QueueEntry {
                            key: cfg.objective.key(cost.0, cost.1),
                            seq,
                            state: *child,
                        });
                    }
                }
            }
        }
        if start.elapsed() > cfg.budget {
            break;
        }
    }
    // Final polish: reschedule the incumbent with the full-quality beam
    // and keep whichever is better.
    let polished = best.rescheduled(&cfg.ctx);
    if cfg.objective.better_than(polished.cost(), best.cost(), 1.0) {
        pareto.insert(polished.eval.peak_bytes, polished.eval.latency);
        best = polished;
    }
    OptimizeResult { best, pareto, history, stats }
}

fn analyze(state: &mut MState, cfg: &OptimizerConfig) {
    if cfg.naive_fission {
        state.ftree = crate::ftree::FTree::build_naive(&state.base, 12, cfg.seed);
        state.tree_stale = false;
    } else {
        state.analyze(cfg.max_level);
    }
}

/// Convenience: optimize for minimum memory with a relative latency
/// budget `lat_factor` × the unoptimized latency (the §7.2.1 setting).
pub fn optimize_memory(g: Graph, lat_factor: f64, cfg_base: &OptimizerConfig) -> OptimizeResult {
    let init = MState::initial(g.clone(), &cfg_base.ctx);
    let mut cfg = cfg_base.clone();
    cfg.objective = Objective::MinMemory { lat_limit: init.eval.latency * lat_factor };
    optimize(g, &cfg)
}

/// Convenience: optimize for minimum latency with a relative memory
/// budget `mem_factor` × the unoptimized peak (the §7.2.2 setting).
pub fn optimize_latency(g: Graph, mem_factor: f64, cfg_base: &OptimizerConfig) -> OptimizeResult {
    let init = MState::initial(g.clone(), &cfg_base.ctx);
    let mut cfg = cfg_base.clone();
    cfg.objective = Objective::MinLatency {
        mem_limit: (init.eval.peak_bytes as f64 * mem_factor) as u64,
    };
    optimize(g, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_graph::builder::GraphBuilder;
    use magis_graph::grad::{append_backward, TrainOptions};
    use magis_graph::tensor::DType;

    fn train_mlp(depth: usize) -> Graph {
        let mut b = GraphBuilder::new(DType::F32);
        let mut cur = b.input([256, 128], "x");
        for i in 0..depth {
            let w = b.weight([128, 128], &format!("w{i}"));
            let h = b.matmul(cur, w);
            cur = b.gelu(h);
        }
        let wl = b.weight([128, 16], "wl");
        let logits = b.matmul(cur, wl);
        let y = b.label([256], "y");
        let loss = b.cross_entropy(logits, y);
        append_backward(b.finish(), loss, &TrainOptions::default()).unwrap().graph
    }

    fn quick_cfg(objective: Objective) -> OptimizerConfig {
        OptimizerConfig::new(objective)
            .with_budget(Duration::from_secs(20))
            .with_max_evals(400)
    }

    #[test]
    fn memory_mode_reduces_peak_within_latency_budget() {
        let g = train_mlp(4);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let cfg = quick_cfg(Objective::MinMemory { lat_limit: init.eval.latency * 1.10 });
        let res = optimize(g, &cfg);
        assert!(
            res.best.eval.peak_bytes < init.eval.peak_bytes,
            "optimizer reduces peak: {} vs {}",
            res.best.eval.peak_bytes,
            init.eval.peak_bytes
        );
        assert!(res.best.eval.latency <= init.eval.latency * 1.10 * 1.0001);
        assert!(res.stats.evaluated > 0);
        assert!(res.history.len() >= 2, "incumbent improved at least once");
    }

    #[test]
    fn latency_mode_respects_memory_limit() {
        let g = train_mlp(4);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let limit = (init.eval.peak_bytes as f64 * 0.8) as u64;
        let cfg = quick_cfg(Objective::MinLatency { mem_limit: limit });
        let res = optimize(g, &cfg);
        assert!(
            res.best.eval.peak_bytes <= limit,
            "memory constraint met: {} <= {limit}",
            res.best.eval.peak_bytes
        );
    }

    #[test]
    fn hash_filter_counts_duplicates() {
        let g = train_mlp(3);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let cfg = quick_cfg(Objective::MinMemory { lat_limit: init.eval.latency * 1.5 });
        let res = optimize(g, &cfg);
        // Inverse rules (de-remat after remat etc.) guarantee revisits.
        assert!(res.stats.filtered > 0, "hash test filters duplicates");
    }

    #[test]
    fn naive_fission_is_no_better() {
        let g = train_mlp(4);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.10 };
        let smart = optimize(g.clone(), &quick_cfg(obj));
        let mut cfg = quick_cfg(obj);
        cfg.naive_fission = true;
        let naive = optimize(g, &cfg);
        // At toy scale random fission can get lucky within the eval
        // budget; the full ablation (Fig. 13) runs at realistic scale.
        // Here we only require the guided search to be competitive.
        assert!(
            smart.best.eval.peak_bytes as f64 <= naive.best.eval.peak_bytes as f64 * 1.15,
            "analysis-guided fission is competitive with random fission: {} vs {}",
            smart.best.eval.peak_bytes,
            naive.best.eval.peak_bytes
        );
    }

    #[test]
    fn objective_keys_and_dominance() {
        let obj = Objective::MinLatency { mem_limit: 100 };
        // Below the limit, memory is saturated: latency decides.
        assert!(obj.better_than((80, 1.0), (90, 2.0), 1.0));
        assert!(!obj.better_than((80, 2.0), (90, 1.0), 1.0));
        // Above the limit, memory decides first.
        assert!(obj.better_than((120, 9.0), (150, 1.0), 1.0));
        // The relaxed test admits slightly worse states.
        assert!(obj.better_than((80, 1.05), (80, 1.0), 1.1));
        assert!(!obj.better_than((80, 1.2), (80, 1.0), 1.1));

        let obj = Objective::MinMemory { lat_limit: 1.0 };
        assert!(obj.better_than((50, 0.5), (80, 0.9), 1.0));
        assert!(obj.better_than((90, 0.9), (50, 2.0), 1.0), "latency blowout loses");
        assert!(obj.satisfied(123, 0.9));
        assert!(!obj.satisfied(123, 1.1));
    }

    #[test]
    fn queue_orders_best_first() {
        let obj = Objective::MinMemory { lat_limit: 1.0 };
        let mut q: BinaryHeap<QueueEntry> = BinaryHeap::new();
        let g = train_mlp(2);
        let ctx = EvalContext::default();
        let s = MState::initial(g, &ctx);
        for (i, (m, l)) in [(100u64, 0.5), (50, 0.5), (70, 0.5)].iter().enumerate() {
            q.push(QueueEntry { key: obj.key(*m, *l), seq: i, state: s.clone() });
        }
        assert_eq!(q.pop().unwrap().key, obj.key(50, 0.5));
        assert_eq!(q.pop().unwrap().key, obj.key(70, 0.5));
    }

    #[test]
    fn pareto_front_is_monotone() {
        let g = train_mlp(3);
        let init = MState::initial(g.clone(), &EvalContext::default());
        let cfg = quick_cfg(Objective::MinMemory { lat_limit: init.eval.latency * 1.3 });
        let res = optimize(g, &cfg);
        let front = res.pareto.front();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 > w[1].1);
        }
    }
}
