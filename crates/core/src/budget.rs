//! Cooperative deadlines and cancellation for the search loop.
//!
//! The optimizer's original stopping knobs — [`OptimizerConfig::budget`]
//! (a soft wall-clock budget) and `max_evals` — predate the service
//! layer. [`SearchBudget`] and [`CancelToken`] put an *anytime*
//! contract on top of them: a search that runs out of wall-clock
//! deadline, exhausts its candidate allowance, or is cancelled from
//! outside stops at the next expansion boundary and returns its
//! best-so-far incumbent with a truthful
//! [`StopReason`](crate::optimizer::StopReason) (`Deadline` /
//! `EvalCapReached` / `Cancelled`) instead of being killed.
//!
//! All checks are cooperative: the search polls at expansion
//! boundaries and inside the parallel fan-out (a worker that observes
//! the deadline/cancellation skips its candidate, and the merge
//! discards everything from the first skip on, exactly like the
//! pre-existing budget check). Cancellation therefore never interrupts
//! a candidate mid-evaluation and never corrupts search state — the
//! incumbent, frontier, and counters remain checkpointable.
//!
//! The token doubles as the search's **heartbeat**: the merge thread
//! bumps a monotonic beat counter once per merged evaluation and once
//! per expansion, so an external watchdog (e.g. `magis-serve`'s) can
//! distinguish a slow-but-alive search from a stalled one without
//! instrumenting the search itself.
//!
//! [`OptimizerConfig::budget`]: crate::optimizer::OptimizerConfig::budget

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deadline contract for one search: a hard wall-clock limit and/or a
/// hard candidate-evaluation cap. The default is unlimited on both
/// axes (the legacy `budget` / `max_evals` knobs still apply).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchBudget {
    /// Hard wall-clock deadline. When it passes, the search stops at
    /// the next expansion boundary with
    /// [`StopReason::Deadline`](crate::optimizer::StopReason::Deadline)
    /// and returns the best-so-far incumbent. Checked *before* the
    /// legacy soft budget so the deadline wins when both expire.
    pub wall_limit: Option<Duration>,
    /// Hard cap on candidate evaluations, checked **only at expansion
    /// boundaries**: every expansion merges its full candidate batch
    /// atomically, so the evaluated count may overshoot the limit by
    /// up to one batch (unlike the legacy `max_evals`, which truncates
    /// mid-expansion). Boundary-only semantics plus cumulative
    /// counters (checkpoints carry them) make this the deterministic
    /// stopping knob for bit-exact kill/resume: a run stopped at limit
    /// k and resumed to limit n passes through exactly the same
    /// expansion-boundary states as an uninterrupted run to n.
    pub candidate_limit: Option<usize>,
}

impl SearchBudget {
    /// No deadline and no candidate cap.
    pub const UNLIMITED: SearchBudget =
        SearchBudget { wall_limit: None, candidate_limit: None };

    /// Sets the wall-clock deadline.
    pub fn with_wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Sets the candidate-evaluation cap (0 is treated as "stop
    /// immediately after the seed evaluation").
    pub fn with_candidate_limit(mut self, limit: usize) -> Self {
        self.candidate_limit = Some(limit);
        self
    }

    /// Whether neither axis is limited (the default).
    pub fn is_unlimited(&self) -> bool {
        self.wall_limit.is_none() && self.candidate_limit.is_none()
    }
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    beats: AtomicU64,
}

/// Shared cooperative cancellation token with a progress heartbeat.
///
/// Clones share one flag: any holder may [`cancel`](Self::cancel), and
/// the search polls [`is_cancelled`](Self::is_cancelled) at expansion
/// boundaries and inside the evaluation fan-out. The search bumps
/// [`beat`](Self::beat) as it merges evaluations; watchdogs read
/// [`beats`](Self::beats) to detect stalls.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with a zeroed heartbeat.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Bumps the heartbeat (called by the search's merge thread).
    pub fn beat(&self) {
        self.inner.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Monotonic heartbeat count (read by watchdogs).
    pub fn beats(&self) -> u64 {
        self.inner.beats.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn heartbeat_is_monotonic_and_shared() {
        let t = CancelToken::new();
        let u = t.clone();
        assert_eq!(t.beats(), 0);
        t.beat();
        u.beat();
        assert_eq!(t.beats(), 2);
    }

    #[test]
    fn budget_builders_compose() {
        let b = SearchBudget::default();
        assert!(b.is_unlimited());
        let b = b
            .with_wall_limit(Duration::from_millis(200))
            .with_candidate_limit(64);
        assert_eq!(b.wall_limit, Some(Duration::from_millis(200)));
        assert_eq!(b.candidate_limit, Some(64));
        assert!(!b.is_unlimited());
    }
}
