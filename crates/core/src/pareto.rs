//! Pareto-front bookkeeping for the dual-objective (memory, latency)
//! optimization (Fig. 11 of the paper).

/// A `(peak_bytes, latency_seconds)` observation.
pub type Point = (u64, f64);

/// Collects observations and exposes their Pareto front.
#[derive(Debug, Clone, Default)]
pub struct ParetoSet {
    points: Vec<Point>,
}

impl ParetoSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ParetoSet::default()
    }

    /// Records an observation.
    pub fn insert(&mut self, mem: u64, latency: f64) {
        self.points.push((mem, latency));
    }

    /// All recorded observations.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The Pareto-optimal subset, sorted by memory ascending (latency
    /// then descends). A point survives if no other point is at least
    /// as good in both objectives and better in one.
    pub fn front(&self) -> Vec<Point> {
        pareto_front(&self.points)
    }

    /// Minimum latency among points with `mem <= limit`, if any.
    pub fn best_latency_under(&self, limit: u64) -> Option<f64> {
        self.points
            .iter()
            .filter(|&&(m, _)| m <= limit)
            .map(|&(_, l)| l)
            .min_by(f64::total_cmp)
    }

    /// Minimum memory among points with `latency <= limit`, if any.
    pub fn best_memory_under(&self, lat_limit: f64) -> Option<u64> {
        self.points
            .iter()
            .filter(|&&(_, l)| l <= lat_limit)
            .map(|&(m, _)| m)
            .min()
    }
}

/// Computes the Pareto front of `(memory, latency)` points.
pub fn pareto_front(points: &[Point]) -> Vec<Point> {
    let mut sorted: Vec<Point> = points.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut front: Vec<Point> = Vec::new();
    let mut best_lat = f64::INFINITY;
    for p in sorted {
        if p.1 < best_lat {
            best_lat = p.1;
            front.push(p);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_filters_dominated() {
        let pts = vec![(100, 1.0), (50, 2.0), (80, 1.5), (90, 1.6), (50, 3.0)];
        let f = pareto_front(&pts);
        assert_eq!(f, vec![(50, 2.0), (80, 1.5), (100, 1.0)]);
    }

    #[test]
    fn best_under_constraints() {
        let mut s = ParetoSet::new();
        s.insert(100, 1.0);
        s.insert(50, 2.0);
        s.insert(80, 1.5);
        assert_eq!(s.best_latency_under(85), Some(1.5));
        assert_eq!(s.best_latency_under(10), None);
        assert_eq!(s.best_memory_under(1.7), Some(80));
    }

    #[test]
    fn duplicates_and_single() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(pareto_front(&[(5, 1.0), (5, 1.0)]), vec![(5, 1.0)]);
    }
}
