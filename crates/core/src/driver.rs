//! Pluggable search strategies over the M-Rule rewrite substrate.
//!
//! The M-Optimizer separates *strategy* from *machinery*. The
//! machinery — candidate generation, the deterministic parallel
//! evaluation fan-out and merge, incumbent/Pareto bookkeeping,
//! sandboxing, quarantine, observability, and checkpoint cadence —
//! lives in [`crate::optimizer::Engine`] and is identical for every
//! strategy. A [`SearchDriver`] supplies only the strategy: which
//! state to expand next and which evaluated children to retain.
//!
//! Two drivers ship today:
//!
//! * [`GreedyDriver`] — the paper's Algorithm 3 greedy best-first
//!   queue with relaxed dominance (`δ`), bit-identical to the
//!   pre-trait monolithic search loop (pinned by the
//!   `driver_search` regression suite).
//! * [`MctsDriver`] — seeded Monte Carlo tree search over rewrite
//!   sequences: UCT selection, full-batch node expansion through the
//!   engine's fan-out, RNG-chosen rollouts through the incremental
//!   `EvalCache`d evaluator, and reward backpropagation on the
//!   objective peak ([`crate::state::Eval::objective_peak`] relative
//!   to the seed state).
//!
//! # Determinism contract (what every driver must uphold)
//!
//! 1. **Seeded** — all randomness comes from a PRNG seeded by
//!    [`crate::optimizer::OptimizerConfig::seed`] and drawn **only on
//!    the driver thread**, never inside evaluation workers.
//! 2. **Thread-count independent** — drivers interact with candidate
//!    evaluation exclusively through [`crate::optimizer::Engine`]
//!    hooks, whose merges run in candidate order on the driver
//!    thread; a driver must not branch on timing, thread identity, or
//!    completion order. `threads = 1` and `threads = N` must produce
//!    bit-identical results.
//! 3. **Anytime stop at expansion boundaries** — drivers return to
//!    the engine loop between steps; deadline / budget / cancellation
//!    / candidate-cap stops happen only there, so every step merges
//!    atomically and a stopped search is resumable.
//! 4. **Checkpoint/resume** — [`SearchDriver::frontier_snapshot`]
//!    must capture *all* driver state (queue or tree, sequence
//!    counters, RNG state) such that a resumed driver replays the
//!    identical trajectory.
//! 5. **Quarantine interaction** — drivers never see candidates from
//!    quarantined rule families (the engine filters them during
//!    generation) and must not cache or replay states across a
//!    quarantine boundary themselves.

#![deny(missing_docs)]

use crate::checkpoint::{FrontierEntry, MctsCheckpoint, MctsNodeMeta, SearchCheckpoint};
use crate::optimizer::{Engine, Objective, OptimizerConfig, QueueEntry};
use crate::state::MState;
use magis_util::rng::{Rng, SeedableRng, SmallRng};
use std::collections::BinaryHeap;

/// Which search strategy drives the M-Optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverKind {
    /// Algorithm 3: greedy best-first queue with relaxed dominance.
    #[default]
    Greedy,
    /// Seeded Monte Carlo tree search over rewrite sequences.
    Mcts,
}

impl DriverKind {
    /// Parses the CLI / wire spelling (`greedy` / `mcts`).
    pub fn parse(s: &str) -> Option<DriverKind> {
        match s {
            "greedy" => Some(DriverKind::Greedy),
            "mcts" => Some(DriverKind::Mcts),
            _ => None,
        }
    }

    /// The canonical spelling (`greedy` / `mcts`).
    pub fn as_str(&self) -> &'static str {
        match self {
            DriverKind::Greedy => "greedy",
            DriverKind::Mcts => "mcts",
        }
    }
}

impl std::fmt::Display for DriverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one [`SearchDriver::step`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The driver made progress (expanded, filtered a duplicate, or
    /// updated its internal statistics); the engine loop continues.
    Progress,
    /// The driver's search space is exhausted; the engine loop ends
    /// with a deterministic stop.
    Exhausted,
}

/// A serializable snapshot of a driver's internal frontier, captured
/// for trajectory-exact checkpoint/resume. The `entries` carry every
/// state the driver still holds (queue entries for greedy, tree nodes
/// for MCTS, keyed by `seq`); `mcts` carries the tree topology,
/// visit/reward statistics, and RNG state when the driver is MCTS.
#[derive(Debug, Clone)]
pub struct DriverFrontier {
    /// The driver's next sequence number (greedy) or node count (MCTS).
    pub next_seq: u64,
    /// Serialized states, sorted by sequence number / node id.
    pub entries: Vec<FrontierEntry>,
    /// MCTS tree metadata (`None` for greedy).
    pub mcts: Option<MctsCheckpoint>,
}

/// A pluggable search strategy. See the module docs for the contract
/// every implementation must uphold; [`GreedyDriver`] and
/// [`MctsDriver`] are the reference implementations.
pub trait SearchDriver {
    /// Which strategy this driver implements (checkpoints are tagged
    /// with it so `resume` restores the right engine).
    fn kind(&self) -> DriverKind;

    /// Performs one atomic unit of search work: for greedy, one queue
    /// pop (expansion or duplicate filter); for MCTS, one
    /// select-expand-rollout-backpropagate iteration. Called by the
    /// engine loop between stop probes; the driver must call
    /// [`Engine::boundary`] after each completed expansion so
    /// timeline/progress/checkpoint cadence fires.
    fn step(&mut self, engine: &mut Engine<'_>) -> StepOutcome;

    /// Current frontier size (queue length / tree node count) for
    /// progress reporting.
    fn frontier_len(&self) -> u64;

    /// Captures the driver's complete internal state for a
    /// trajectory-exact checkpoint.
    fn frontier_snapshot(&self) -> DriverFrontier;
}

// ---------------------------------------------------------------- greedy

/// The paper's Algorithm 3: a greedy best-first priority queue ordered
/// by the objective key, with δ-relaxed dominance deciding which
/// evaluated children stay on the queue. This is the default driver
/// and is bit-identical to the pre-`SearchDriver` monolithic search
/// loop.
pub struct GreedyDriver {
    queue: BinaryHeap<QueueEntry>,
    seq: usize,
    objective: Objective,
    delta: f64,
}

impl GreedyDriver {
    /// Builds the driver: a fresh search (or legacy checkpoint resume)
    /// seeds the queue with `init`; a trajectory-exact resume restores
    /// the checkpointed `frontier` entries and sequence counter
    /// verbatim and does **not** re-push the incumbent.
    pub(crate) fn new(
        cfg: &OptimizerConfig,
        init: MState,
        frontier: Vec<(u64, MState)>,
        next_seq: u64,
        exact_resume: bool,
    ) -> GreedyDriver {
        let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();
        let seq;
        if exact_resume {
            // Re-pushing the checkpointed entry set reproduces the
            // original pop order exactly: `QueueEntry`'s ordering is
            // total (objective key, then sequence number), so the
            // heap's pop sequence is a pure function of its contents.
            for (sq, state) in frontier {
                let (m, l) = state.cost();
                queue.push(QueueEntry { key: cfg.objective.key(m, l), seq: sq as usize, state });
            }
            seq = next_seq as usize;
        } else {
            seq = 0;
            let (m, l) = init.cost();
            queue.push(QueueEntry { key: cfg.objective.key(m, l), seq, state: init });
        }
        GreedyDriver { queue, seq, objective: cfg.objective, delta: cfg.delta }
    }
}

impl SearchDriver for GreedyDriver {
    fn kind(&self) -> DriverKind {
        DriverKind::Greedy
    }

    fn step(&mut self, engine: &mut Engine<'_>) -> StepOutcome {
        let Some(entry) = self.queue.pop() else { return StepOutcome::Exhausted };
        let mut state = entry.state;
        if !engine.admit_pop(&state) {
            // Duplicate: filtered without an expansion, so no boundary
            // bookkeeping fires (matching the pre-trait loop).
            return StepOutcome::Progress;
        }
        let candidates = engine.begin(&mut state);
        let queue = &mut self.queue;
        let seq = &mut self.seq;
        let (objective, delta) = (self.objective, self.delta);
        engine.evaluate(&state, &candidates, None, true, &mut |_i, child, cost, best_cost| {
            // The δ-relaxed push test reads the incumbent as updated
            // mid-batch (`best_cost`), exactly like Algorithm 3.
            if objective.better_than(cost, best_cost, delta) {
                *seq += 1;
                queue.push(QueueEntry { key: objective.key(cost.0, cost.1), seq: *seq, state: child });
                true
            } else {
                false
            }
        });
        engine.boundary(self.queue.len() as u64, &mut || snapshot_greedy(&self.queue, self.seq));
        StepOutcome::Progress
    }

    fn frontier_len(&self) -> u64 {
        self.queue.len() as u64
    }

    fn frontier_snapshot(&self) -> DriverFrontier {
        snapshot_greedy(&self.queue, self.seq)
    }
}

/// Serializes the greedy queue, sorted by sequence number (BinaryHeap
/// iteration order is unspecified; the sort makes the checkpoint bytes
/// a pure function of the search state).
fn snapshot_greedy(queue: &BinaryHeap<QueueEntry>, seq: usize) -> DriverFrontier {
    let mut entries: Vec<FrontierEntry> = queue
        .iter()
        .map(|e| {
            let (order, ftree_nodes, base_record, eval_record) =
                SearchCheckpoint::snapshot_state(&e.state);
            FrontierEntry {
                seq: e.seq as u64,
                tree_stale: e.state.tree_stale,
                order,
                ftree_nodes,
                base_record,
                eval_record,
            }
        })
        .collect();
    entries.sort_by_key(|e| e.seq);
    DriverFrontier { next_seq: seq as u64, entries, mcts: None }
}

// ---------------------------------------------------------------- mcts

/// One MCTS tree node: an evaluated M-State plus the UCT statistics.
struct Node {
    state: MState,
    parent: Option<usize>,
    /// Candidate index (within the parent's sorted batch) of the
    /// transform that produced this node — stable across thread counts
    /// and the checkpoint round-trip.
    cand_index: usize,
    /// Child node ids, in candidate order.
    children: Vec<usize>,
    visits: u64,
    reward_sum: f64,
    /// Whether this node's candidate batch has been generated and
    /// evaluated. An expanded node with no children is terminal.
    expanded: bool,
}

/// UCT exploration constant. The canonical UCB1 setting (√2) assumes
/// rewards spanning `[0, 1]`; our rewards are fractional peak
/// reductions that rarely exceed ~0.15, so √2 would drown the
/// exploitation term and degenerate selection into breadth-first
/// sweeping. The constant is scaled to the observed reward range,
/// which keeps the exploration bonus comparable to real reward
/// differences at bench-sized eval budgets.
const EXPLORE_C: f64 = 0.1;
/// Rollout horizon: how many RNG-chosen single-candidate steps a
/// simulation walks past the tree frontier. Memory rewrites compound
/// (a recompute unlock often pays off several steps later), so the
/// horizon is deep enough for multi-step chains to show up in the
/// reward signal.
const ROLLOUT_DEPTH: usize = 12;

/// Seeded Monte Carlo tree search over rewrite sequences.
///
/// Each [`SearchDriver::step`] runs one MCTS iteration:
///
/// 1. **Selection** — descend from the root by UCT
///    (`mean reward + √2·√(ln N / n)`), breaking ties toward the
///    lowest candidate index; stop at the first unexpanded node.
/// 2. **Expansion** — generate and evaluate the node's *full*
///    candidate batch through the engine's deterministic fan-out;
///    every evaluated child becomes a tree node (transpositions are
///    legitimate tree branches, so the greedy seen-set dedup is off).
/// 3. **Rollout** — from the best-cost new child (lowest objective
///    key in the batch, ties toward the lowest candidate index), walk
///    up to `ROLLOUT_DEPTH` steps; each step generates the
///    candidate batch, RNG-picks one index *before* evaluation, and
///    evaluates just that candidate inline on the driver thread.
/// 4. **Backpropagation** — the best memory-constrained reward seen
///    along the walk (`(seed_peak − objective_peak)/seed_peak`,
///    zeroed when the latency constraint is violated) is added to
///    every node on the selection path.
///
/// All RNG draws happen on the driver thread from a
/// [`SmallRng`] seeded with `OptimizerConfig::seed`, so trajectories
/// are bit-identical across thread counts; the RNG state and full
/// tree ride in frontier checkpoints for trajectory-exact resume.
pub struct MctsDriver {
    nodes: Vec<Node>,
    rng: SmallRng,
}

impl MctsDriver {
    /// A fresh tree rooted at `init`.
    pub(crate) fn new(cfg: &OptimizerConfig, init: MState) -> MctsDriver {
        MctsDriver {
            nodes: vec![Node {
                state: init,
                parent: None,
                cand_index: 0,
                children: Vec::new(),
                visits: 0,
                reward_sum: 0.0,
                expanded: false,
            }],
            rng: SmallRng::seed_from_u64(cfg.seed),
        }
    }

    /// Rebuilds the tree from a checkpoint: `states` are the restored
    /// frontier entries keyed by node id, `meta` the topology /
    /// statistics / RNG state. The caller (`optimizer::resume`) has
    /// already validated that ids are dense and counts match.
    pub(crate) fn resume(states: Vec<(u64, MState)>, meta: &MctsCheckpoint) -> MctsDriver {
        let mut nodes: Vec<Node> = states
            .into_iter()
            .zip(&meta.nodes)
            .map(|((_, state), m)| Node {
                state,
                parent: m.parent.map(|p| p as usize),
                cand_index: m.cand_index as usize,
                children: Vec::new(),
                visits: m.visits,
                reward_sum: m.reward_sum,
                expanded: m.expanded,
            })
            .collect();
        // Children are reconstructed from parent links in node-id
        // order, which is creation (candidate) order — so UCT
        // tie-breaks replay identically after a resume.
        for i in 0..nodes.len() {
            if let Some(p) = nodes[i].parent {
                nodes[p].children.push(i);
            }
        }
        MctsDriver { nodes, rng: SmallRng::from_state(meta.rng_state) }
    }

    /// Memory-constrained reward relative to the seed state, in
    /// `[0, 1]`: the fractional objective-peak reduction when the
    /// budget constraint holds, zero otherwise (and symmetrically on
    /// latency for `MinLatency`).
    fn reward(engine: &Engine<'_>, cost: (u64, f64)) -> f64 {
        let seed = engine.seed_cost();
        match engine.objective() {
            Objective::MinMemory { lat_limit } => {
                if cost.1 > lat_limit || seed.0 == 0 {
                    return 0.0;
                }
                ((seed.0 as f64 - cost.0 as f64) / seed.0 as f64).max(0.0)
            }
            Objective::MinLatency { mem_limit } => {
                if cost.0 > mem_limit || seed.1 <= 0.0 {
                    return 0.0;
                }
                ((seed.1 - cost.1) / seed.1).max(0.0)
            }
        }
    }

    /// UCT child selection: the first unvisited child (in candidate
    /// order) wins outright; otherwise the highest UCB1 score, with
    /// strict comparison so ties break toward the lowest candidate
    /// index.
    fn select_child(&self, parent: usize) -> usize {
        let ln_p = (self.nodes[parent].visits.max(1) as f64).ln();
        let children = &self.nodes[parent].children;
        let mut best_id = children[0];
        let mut best_score = f64::NEG_INFINITY;
        for &c in children {
            let n = &self.nodes[c];
            if n.visits == 0 {
                return c;
            }
            let v = n.visits as f64;
            let score = n.reward_sum / v + EXPLORE_C * (ln_p / v).sqrt();
            if score > best_score {
                best_score = score;
                best_id = c;
            }
        }
        best_id
    }

    /// Simulation: walk up to `ROLLOUT_DEPTH` RNG-chosen rewrites
    /// from `start`, evaluating only the chosen candidate at each step
    /// (inline, on this thread). Returns the best reward seen.
    fn rollout(&mut self, engine: &mut Engine<'_>, start: usize) -> f64 {
        let mut cur = self.nodes[start].state.clone();
        let mut best_r = Self::reward(engine, cur.cost());
        for _ in 0..ROLLOUT_DEPTH {
            let candidates = engine.begin(&mut cur);
            if candidates.is_empty() {
                break;
            }
            // The index is drawn BEFORE evaluation so the RNG stream
            // is a pure function of the trajectory, not of evaluation
            // outcomes.
            let i = self.rng.gen_range(0..candidates.len());
            let mut picked: Option<(MState, (u64, f64))> = None;
            engine.evaluate(&cur, &candidates, Some(i), false, &mut |_, child, cost, _| {
                picked = Some((child, cost));
                true
            });
            let Some((next, cost)) = picked else { break };
            best_r = best_r.max(Self::reward(engine, cost));
            cur = next;
        }
        best_r
    }
}

impl SearchDriver for MctsDriver {
    fn kind(&self) -> DriverKind {
        DriverKind::Mcts
    }

    fn step(&mut self, engine: &mut Engine<'_>) -> StepOutcome {
        // Every node expanded means no expansion can ever evaluate a
        // new state again: the reachable space is exhausted.
        if self.nodes.iter().all(|n| n.expanded) {
            return StepOutcome::Exhausted;
        }
        // Selection.
        let mut path = vec![0usize];
        let mut cur = 0usize;
        while self.nodes[cur].expanded && !self.nodes[cur].children.is_empty() {
            cur = self.select_child(cur);
            path.push(cur);
        }
        let reward;
        if self.nodes[cur].expanded {
            // Terminal leaf (no candidates survived generation): its
            // own cost is the whole signal. Visits still accumulate,
            // steering UCT toward unexplored siblings.
            reward = Self::reward(engine, self.nodes[cur].state.cost());
        } else {
            // Expansion: full-batch evaluation through the engine's
            // deterministic fan-out; every evaluated child becomes a
            // node (dedup off — transpositions are legitimate).
            let mut state = self.nodes[cur].state.clone();
            let candidates = engine.begin(&mut state);
            let objective = engine.objective();
            let mut new_children: Vec<(usize, MState)> = Vec::new();
            // Offset (into the new-children run) of the best-cost
            // child; candidate-order iteration with strict `<` makes
            // the tie-break the lowest candidate index.
            let mut best_off = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            engine.evaluate(&state, &candidates, None, false, &mut |i, child, cost, _best| {
                let key = objective.key(cost.0, cost.1);
                if key < best_key {
                    best_key = key;
                    best_off = new_children.len();
                }
                new_children.push((i, child));
                true
            });
            self.nodes[cur].state = state; // keep the analyzed F-Tree
            self.nodes[cur].expanded = true;
            let first_new = self.nodes.len();
            for (i, child) in new_children {
                let id = self.nodes.len();
                self.nodes.push(Node {
                    state: child,
                    parent: Some(cur),
                    cand_index: i,
                    children: Vec::new(),
                    visits: 0,
                    reward_sum: 0.0,
                    expanded: false,
                });
                self.nodes[cur].children.push(id);
            }
            if self.nodes.len() == first_new {
                reward = Self::reward(engine, self.nodes[cur].state.cost());
            } else {
                // Roll out from the best-cost new child: the rollout
                // is the expensive part of the iteration, so it starts
                // where the objective says the signal is — the RNG
                // then diversifies the walk itself.
                let pick = first_new + best_off;
                path.push(pick);
                reward = self.rollout(engine, pick);
            }
        }
        // Backpropagation.
        for &n in &path {
            self.nodes[n].visits += 1;
            self.nodes[n].reward_sum += reward;
        }
        engine.boundary(self.nodes.len() as u64, &mut || self.frontier_snapshot());
        StepOutcome::Progress
    }

    fn frontier_len(&self) -> u64 {
        self.nodes.len() as u64
    }

    fn frontier_snapshot(&self) -> DriverFrontier {
        let entries = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| {
                let (order, ftree_nodes, base_record, eval_record) =
                    SearchCheckpoint::snapshot_state(&n.state);
                FrontierEntry {
                    seq: id as u64,
                    tree_stale: n.state.tree_stale,
                    order,
                    ftree_nodes,
                    base_record,
                    eval_record,
                }
            })
            .collect();
        DriverFrontier {
            next_seq: self.nodes.len() as u64,
            entries,
            mcts: Some(MctsCheckpoint {
                rng_state: self.rng.state(),
                nodes: self
                    .nodes
                    .iter()
                    .map(|n| MctsNodeMeta {
                        parent: n.parent.map(|p| p as u64),
                        cand_index: n.cand_index as u64,
                        visits: n.visits,
                        reward_sum: n.reward_sum,
                        expanded: n.expanded,
                    })
                    .collect(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Objective;
    use crate::state::EvalContext;
    use magis_graph::builder::GraphBuilder;
    use magis_graph::tensor::DType;

    fn tiny_state() -> MState {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64, 32], "x");
        let w = b.weight([32, 32], "w");
        let h = b.matmul(x, w);
        b.relu(h);
        MState::initial(b.finish(), &EvalContext::default())
    }

    #[test]
    fn driver_kind_round_trips() {
        for k in [DriverKind::Greedy, DriverKind::Mcts] {
            assert_eq!(DriverKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(DriverKind::parse("quantum"), None);
        assert_eq!(DriverKind::default(), DriverKind::Greedy);
    }

    #[test]
    fn queue_orders_best_first() {
        let obj = Objective::MinMemory { lat_limit: 1.0 };
        let mut q: BinaryHeap<QueueEntry> = BinaryHeap::new();
        let s = tiny_state();
        for (i, (m, l)) in [(100u64, 0.5), (50, 0.5), (70, 0.5)].iter().enumerate() {
            q.push(QueueEntry { key: obj.key(*m, *l), seq: i, state: s.clone() });
        }
        assert_eq!(q.pop().unwrap().key, obj.key(50, 0.5));
        assert_eq!(q.pop().unwrap().key, obj.key(70, 0.5));
    }

    #[test]
    fn mcts_resume_rebuilds_children_in_candidate_order() {
        let s = tiny_state();
        let meta = MctsCheckpoint {
            rng_state: 0xabcd,
            nodes: vec![
                MctsNodeMeta { parent: None, cand_index: 0, visits: 3, reward_sum: 0.5, expanded: true },
                MctsNodeMeta { parent: Some(0), cand_index: 0, visits: 1, reward_sum: 0.25, expanded: false },
                MctsNodeMeta { parent: Some(0), cand_index: 2, visits: 2, reward_sum: 0.25, expanded: false },
            ],
        };
        let states = vec![(0, s.clone()), (1, s.clone()), (2, s)];
        let d = MctsDriver::resume(states, &meta);
        assert_eq!(d.nodes[0].children, vec![1, 2]);
        assert_eq!(d.nodes[2].cand_index, 2);
        assert_eq!(d.nodes[0].visits, 3);
        assert_eq!(d.rng.state(), 0xabcd);
        assert_eq!(d.frontier_len(), 3);
        let snap = d.frontier_snapshot();
        assert_eq!(snap.next_seq, 3);
        let m = snap.mcts.unwrap();
        assert_eq!(m.rng_state, 0xabcd);
        assert_eq!(m.nodes.len(), 3);
        assert_eq!(m.nodes[2].cand_index, 2);
    }
}
