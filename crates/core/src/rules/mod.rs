//! M-Rules (§5): the unified transformation vocabulary explored by the
//! M-Optimizer — F-Tree mutations (§5.1), scheduling-based rules
//! decomposed from re-materialization and swapping (§5.2, Fig. 8), and
//! TASO-style aggregation/interim rules (Fig. 1 (a)/(b)).

pub mod sched_rules;
pub mod taso_rules;

use crate::ftree::{FTree, FTreeMutation};
use crate::state::MState;
use magis_graph::graph::{Graph, NodeId};
use std::collections::BTreeSet;
use std::fmt;

pub use taso_rules::TasoTransform;

/// One candidate transformation of an M-State.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Transform {
    /// An F-Tree mutation (fission enable/lift/disable/mutate).
    FTree(FTreeMutation),
    /// Re-materialization rule: give `user` a recomputed clone of
    /// `producer` (Fig. 8 (a)/(b)).
    Remat {
        /// The node whose output is recomputed.
        producer: NodeId,
        /// The consumer re-routed through the recomputed clone.
        user: NodeId,
    },
    /// De-re-materialization: merge duplicate `drop` into `keep`
    /// (Fig. 8 (c)/(d)).
    DeRemat {
        /// The surviving producer.
        keep: NodeId,
        /// The duplicate folded into `keep`.
        drop: NodeId,
    },
    /// Swapping rule: route `user`'s read of `producer` through
    /// `Store`/`Load` (Fig. 8 (e)).
    Swap {
        /// The node whose output is spilled to host memory.
        producer: NodeId,
        /// The consumer re-routed through the `Load`.
        user: NodeId,
    },
    /// De-swapping: collapse a `Store`/`Load` pair (Fig. 8 (f)).
    DeSwap {
        /// The `Load` node of the pair being collapsed.
        load: NodeId,
    },
    /// A TASO aggregation/interim rule.
    Taso(TasoTransform),
}

impl Transform {
    /// A total order on transforms: `(rule family, id, id)`. The
    /// parallel optimizer sorts each candidate batch by this key before
    /// fanning out, so the merge order — and therefore the search
    /// trajectory — is independent of generation order and thread
    /// count.
    pub fn sort_key(&self) -> (u8, u64, u64) {
        match self {
            Transform::FTree(FTreeMutation::Enable(i)) => (0, *i as u64, 0),
            Transform::FTree(FTreeMutation::Lift(i)) => (1, *i as u64, 0),
            Transform::FTree(FTreeMutation::Disable(i)) => (2, *i as u64, 0),
            Transform::FTree(FTreeMutation::Mutate(i)) => (3, *i as u64, 0),
            Transform::Remat { producer, user } => (4, producer.index() as u64, user.index() as u64),
            Transform::DeRemat { keep, drop } => (5, keep.index() as u64, drop.index() as u64),
            Transform::Swap { producer, user } => (6, producer.index() as u64, user.index() as u64),
            Transform::DeSwap { load } => (7, load.index() as u64, 0),
            Transform::Taso(TasoTransform::MergeMatmuls { a, b }) => {
                (8, a.index() as u64, b.index() as u64)
            }
            Transform::Taso(TasoTransform::MergeConvs { a, b }) => {
                (9, a.index() as u64, b.index() as u64)
            }
            Transform::Taso(TasoTransform::RotateAdd { top }) => (10, top.index() as u64, 0),
        }
    }
}

/// Human-readable name of a rule family id (`sort_key().0`), used in
/// metric labels and the search timeline.
pub fn family_name(family: u8) -> &'static str {
    match family {
        0 => "ftree-enable",
        1 => "ftree-lift",
        2 => "ftree-disable",
        3 => "ftree-mutate",
        4 => "remat",
        5 => "deremat",
        6 => "swap",
        7 => "deswap",
        8 => "taso-merge-matmul",
        9 => "taso-merge-conv",
        10 => "taso-rotate-add",
        _ => "unknown",
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transform::FTree(m) => write!(f, "ftree:{m:?}"),
            Transform::Remat { producer, user } => write!(f, "remat:{producer}->{user}"),
            Transform::DeRemat { keep, drop } => write!(f, "deremat:{drop}=>{keep}"),
            Transform::Swap { producer, user } => write!(f, "swap:{producer}->{user}"),
            Transform::DeSwap { load } => write!(f, "deswap:{load}"),
            Transform::Taso(t) => write!(f, "taso:{t:?}"),
        }
    }
}

/// Rule-generation configuration.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// Apply the §5.2 heuristic: match re-mat/swap sites only against
    /// memory hot-spots. Disabling this is the `naïve-sch-rule`
    /// ablation of §7.2.5.
    pub hotspot_filter: bool,
    /// Include TASO aggregation/interim rules.
    pub enable_taso: bool,
    /// Per-rule-family candidate cap (largest tensors first).
    pub max_per_rule: usize,
    /// Minimum tensor size (bytes) for a swap to be worth issuing.
    pub min_swap_bytes: u64,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            hotspot_filter: true,
            enable_taso: true,
            max_per_rule: 24,
            min_swap_bytes: 1 << 18,
        }
    }
}

/// Error applying a transform (candidate abandoned by the optimizer).
#[derive(Debug, Clone)]
pub struct ApplyError(pub String);

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transform failed: {}", self.0)
    }
}

impl std::error::Error for ApplyError {}

/// Result of applying a transform to an M-State's base graph.
#[derive(Debug, Clone)]
pub struct Applied {
    /// The new base graph.
    pub base: Graph,
    /// The new F-Tree.
    pub ftree: FTree,
    /// Nodes of the *old* graph touched by the transform (the `S_old`
    /// of Algorithm 2).
    pub mutated: BTreeSet<NodeId>,
    /// Whether the F-Tree must be re-analyzed (graph structure changed
    /// outside fission regions, §3 / Algorithm 3 line 13).
    pub tree_stale: bool,
}

/// Generates all candidate transforms of a state.
pub fn generate(state: &MState, cfg: &RuleConfig) -> Vec<Transform> {
    let mut out = Vec::new();
    for m in state.ftree.legal_mutations(&state.base) {
        out.push(Transform::FTree(m));
    }
    sched_rules::generate(state, cfg, &mut out);
    if cfg.enable_taso {
        taso_rules::generate(state, cfg, &mut out);
    }
    out
}

/// Applies a transform to a state's base graph + F-Tree.
///
/// # Errors
///
/// Returns [`ApplyError`] when the transform is no longer applicable
/// (the optimizer simply drops the candidate).
pub fn apply(state: &MState, t: &Transform) -> Result<Applied, ApplyError> {
    match t {
        Transform::FTree(m) => {
            let (ftree, region) = state
                .ftree
                .apply(&state.base, *m)
                .map_err(ApplyError)?;
            Ok(Applied { base: state.base.clone(), ftree, mutated: region, tree_stale: false })
        }
        Transform::Remat { producer, user } => sched_rules::apply_remat(state, *producer, *user),
        Transform::DeRemat { keep, drop } => sched_rules::apply_deremat(state, *keep, *drop),
        Transform::Swap { producer, user } => sched_rules::apply_swap(state, *producer, *user),
        Transform::DeSwap { load } => sched_rules::apply_deswap(state, *load),
        Transform::Taso(tt) => taso_rules::apply(state, tt),
    }
}

/// Whether a node set is disjoint from every enabled fission region
/// (rules must not mutate split regions, §3).
pub(crate) fn outside_enabled_regions(ftree: &FTree, set: &BTreeSet<NodeId>) -> bool {
    ftree
        .nodes()
        .iter()
        .filter(|n| n.enabled())
        .all(|n| n.spec.set.intersection(set).next().is_none())
}
