//! Scheduling-based rules (§5.2, Fig. 8): re-materialization and
//! swapping expressed as graph transformations, plus their inverses.
//!
//! Decomposing scheduling into these rules + pure re-ordering moves the
//! whole memory/latency trade-off into the transformation search space
//! (§1): after any rule application the scheduler only has to re-order
//! for memory, never to decide *what* to recompute or swap.

use magis_graph::{GraphTxn, GraphView};
use super::{outside_enabled_regions, Applied, ApplyError, RuleConfig, Transform};
use crate::state::MState;
use magis_graph::graph::NodeId;
use magis_graph::op::OpKind;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

/// Whether a node's output is worth re-materializing / swapping.
fn is_schedulable_producer(state: &MState, v: NodeId) -> bool {
    let n = state.base.node(v);
    !n.op.is_input()
        && !n.op.is_swap()
        && !n.op.is_alias()
        && !matches!(n.op, OpKind::PartSlice { .. } | OpKind::Merge { .. })
        && n.size_bytes() > 0
}

/// Generates re-mat, de-re-mat, swap, and de-swap candidates.
pub fn generate(state: &MState, cfg: &RuleConfig, out: &mut Vec<Transform>) {
    let g = &state.base;
    let hot = &state.eval.hotspots_base;
    let pos = &state.eval.base_positions;

    // --- Re-materialization & swapping sites -------------------------
    let mut producers: Vec<NodeId> = g
        .node_ids()
        .filter(|&v| is_schedulable_producer(state, v))
        .filter(|&v| !cfg.hotspot_filter || hot.contains(&v))
        .filter(|v| g.suc(*v).len() >= 2)
        .collect();
    producers.sort_by_key(|&v| std::cmp::Reverse(g.node(v).size_bytes()));
    producers.truncate(cfg.max_per_rule);
    for &p in &producers {
        // Separate the *latest* user (Fig. 8 (a): one user switches to
        // the recomputed clone; the later the user, the longer the gap
        // the rule can free).
        let user = g
            .suc(p)
            .into_iter()
            .filter(|&u| !g.node(u).op.is_swap())
            .max_by_key(|u| pos.get(u).copied().unwrap_or(0));
        if let Some(user) = user {
            let region: BTreeSet<NodeId> = [p, user].into_iter().collect();
            if outside_enabled_regions(&state.ftree, &region) {
                out.push(Transform::Remat { producer: p, user });
                if g.node(p).size_bytes() >= cfg.min_swap_bytes {
                    out.push(Transform::Swap { producer: p, user });
                }
            }
        }
    }
    // Swap is also useful for single-user long-lived tensors (e.g.
    // forward activations kept for the backward pass).
    let mut single: Vec<NodeId> = g
        .node_ids()
        .filter(|&v| is_schedulable_producer(state, v))
        .filter(|&v| !cfg.hotspot_filter || hot.contains(&v))
        .filter(|&v| g.suc(v).len() == 1 && g.node(v).size_bytes() >= cfg.min_swap_bytes)
        .collect();
    single.sort_by_key(|&v| std::cmp::Reverse(g.node(v).size_bytes()));
    single.truncate(cfg.max_per_rule);
    for p in single {
        let user = g.suc(p)[0];
        if g.node(user).op.is_swap() {
            continue;
        }
        // Only worthwhile when producer and user are far apart.
        let gap = pos
            .get(&user)
            .copied()
            .unwrap_or(0)
            .saturating_sub(pos.get(&p).copied().unwrap_or(0));
        if gap < 8 {
            continue;
        }
        let region: BTreeSet<NodeId> = [p, user].into_iter().collect();
        if outside_enabled_regions(&state.ftree, &region) {
            out.push(Transform::Swap { producer: p, user });
        }
    }

    // --- Inverse rules ------------------------------------------------
    // De-re-mat: duplicate (op, inputs) pairs.
    let mut sig: HashMap<u64, NodeId> = HashMap::new();
    for v in g.node_ids() {
        let n = g.node(v);
        if n.op.is_input() || n.op.is_swap() {
            continue;
        }
        let mut h = DefaultHasher::new();
        n.op.hash(&mut h);
        n.inputs().hash(&mut h);
        let key = h.finish();
        match sig.get(&key) {
            Some(&first) if g.node(first).op == n.op && g.pre(first) == n.inputs() => {
                let region: BTreeSet<NodeId> = [first, v].into_iter().collect();
                if outside_enabled_regions(&state.ftree, &region) {
                    out.push(Transform::DeRemat { keep: first, drop: v });
                }
            }
            _ => {
                sig.insert(key, v);
            }
        }
    }
    // De-swap: every Store→Load pair can be collapsed.
    for v in g.node_ids() {
        if matches!(g.node(v).op, OpKind::Load) {
            out.push(Transform::DeSwap { load: v });
        }
    }
}

/// Users of `producer` scheduled in the same late cluster as `user`:
/// the anchor user and everything at or after it, minus a small slack
/// window (the backward pass typically reads an activation through
/// both its `dX` and `dW` consumers at the same stage — Fig. 8 (b)'s
/// rule moves the whole group to the recomputed clone).
fn late_cluster(state: &MState, producer: NodeId, user: NodeId) -> Vec<NodeId> {
    let pos = &state.eval.base_positions;
    let n = state.eval.order.len().max(1);
    let anchor = pos.get(&user).copied().unwrap_or(usize::MAX);
    let slack = n / 10 + 1;
    state
        .base
        .suc(producer)
        .into_iter()
        .filter(|u| {
            *u == user
                || pos
                    .get(u)
                    .is_some_and(|&p| p + slack >= anchor)
        })
        .collect()
}

/// Applies the re-materialization rule: the late user cluster switches
/// to a recomputed clone of the producer.
pub fn apply_remat(state: &MState, producer: NodeId, user: NodeId) -> Result<Applied, ApplyError> {
    let mut txn = GraphTxn::begin(&state.base);
    if !txn.contains(producer) || !txn.contains(user) {
        return Err(ApplyError("stale remat target".into()));
    }
    if !txn.pre(user).contains(&producer) {
        return Err(ApplyError("user no longer consumes producer".into()));
    }
    let group = late_cluster(state, producer, user);
    if group.len() >= txn.suc(producer).len() {
        return Err(ApplyError("remat would orphan the producer".into()));
    }
    let node = txn.node(producer).clone();
    let clone = txn
        .add_with_meta(node.op.clone(), node.inputs(), node.meta.clone())
        .map_err(|e| ApplyError(e.to_string()))?;
    txn.set_name(clone, "remat");
    let mut mutated: BTreeSet<NodeId> = [producer].into_iter().collect();
    for u in group {
        txn.replace_input(u, producer, clone);
        mutated.insert(u);
    }
    let (base, _) = txn.commit();
    Ok(Applied { base, ftree: state.ftree.clone(), mutated, tree_stale: true })
}

/// Applies the de-re-materialization rule.
pub fn apply_deremat(state: &MState, keep: NodeId, drop: NodeId) -> Result<Applied, ApplyError> {
    let mut txn = GraphTxn::begin(&state.base);
    if !txn.contains(keep) || !txn.contains(drop) || keep == drop {
        return Err(ApplyError("stale deremat target".into()));
    }
    if txn.node(keep).op != txn.node(drop).op || txn.pre(keep) != txn.pre(drop) {
        return Err(ApplyError("nodes are no longer duplicates".into()));
    }
    let mutated: BTreeSet<NodeId> =
        [keep, drop].into_iter().chain(txn.suc(drop)).collect();
    txn.redirect_uses(drop, keep);
    txn.remove(drop).map_err(|e| ApplyError(e.to_string()))?;
    let (base, _) = txn.commit();
    Ok(Applied { base, ftree: state.ftree.clone(), mutated, tree_stale: true })
}

/// Applies the swapping rule: the late user cluster reads the tensor
/// back through a `Store`/`Load` pair.
pub fn apply_swap(state: &MState, producer: NodeId, user: NodeId) -> Result<Applied, ApplyError> {
    let mut txn = GraphTxn::begin(&state.base);
    if !txn.contains(producer) || !txn.contains(user) {
        return Err(ApplyError("stale swap target".into()));
    }
    if !txn.pre(user).contains(&producer) {
        return Err(ApplyError("user no longer consumes producer".into()));
    }
    let group = late_cluster(state, producer, user);
    let st = txn.add(OpKind::Store, &[producer]).map_err(|e| ApplyError(e.to_string()))?;
    let ld = txn.add(OpKind::Load, &[st]).map_err(|e| ApplyError(e.to_string()))?;
    let mut mutated: BTreeSet<NodeId> = [producer].into_iter().collect();
    for u in group {
        txn.replace_input(u, producer, ld);
        mutated.insert(u);
    }
    let (base, _) = txn.commit();
    Ok(Applied { base, ftree: state.ftree.clone(), mutated, tree_stale: true })
}

/// Applies the de-swapping rule: `A -> Store -> Load -> B` becomes
/// `A -> B`.
pub fn apply_deswap(state: &MState, load: NodeId) -> Result<Applied, ApplyError> {
    let mut txn = GraphTxn::begin(&state.base);
    if !txn.contains(load) || !matches!(txn.node(load).op, OpKind::Load) {
        return Err(ApplyError("stale deswap target".into()));
    }
    let store = txn.pre(load)[0];
    if !matches!(txn.node(store).op, OpKind::Store) {
        return Err(ApplyError("load without store".into()));
    }
    let producer = txn.pre(store)[0];
    let mutated: BTreeSet<NodeId> =
        [producer, store, load].into_iter().chain(txn.suc(load)).collect();
    txn.redirect_uses(load, producer);
    txn.remove(load).map_err(|e| ApplyError(e.to_string()))?;
    if txn.use_count(store) == 0 {
        txn.remove(store).map_err(|e| ApplyError(e.to_string()))?;
    }
    let (base, _) = txn.commit();
    Ok(Applied { base, ftree: state.ftree.clone(), mutated, tree_stale: true })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{EvalContext, MState};
    use magis_graph::builder::GraphBuilder;
    use magis_graph::tensor::DType;

    /// Two long-lived 1 MiB tensors produced cheaply from small
    /// weights, consumed in LIFO order at the end (the backward-pass
    /// lifetime shape): the classic remat/swap site. The peak holds
    /// both of them plus the working chain; evicting `a1` (recompute or
    /// swap) removes one tensor from the plateau.
    fn long_lifetime_state() -> (MState, NodeId, NodeId) {
        let mut b = GraphBuilder::new(DType::F32);
        let u1 = b.weight([512, 16], "u1");
        let v1 = b.weight([16, 512], "v1");
        let u2 = b.weight([512, 16], "u2");
        let v2 = b.weight([16, 512], "v2");
        let a1 = b.matmul(u1, v1);
        let a2 = b.matmul(u2, v2);
        let c = b.add_op(a1, a2);
        let mut cur = b.gelu(c);
        for _ in 0..6 {
            cur = b.gelu(cur);
        }
        let late1 = b.add_op(cur, a2);
        let mut tail = b.gelu(late1);
        for _ in 0..6 {
            tail = b.gelu(tail);
        }
        let late2 = b.add_op(tail, a1);
        let g = b.finish();
        let ctx = EvalContext::default();
        (MState::initial(g, &ctx), a1, late2)
    }

    #[test]
    fn remat_generates_and_applies() {
        let (state, a, late) = long_lifetime_state();
        let mut cands = Vec::new();
        generate(&state, &RuleConfig::default(), &mut cands);
        assert!(
            cands.iter().any(|t| matches!(t, Transform::Remat { producer, .. } if *producer == a)),
            "multi-user hot tensor must be a remat site: {cands:?}"
        );
        let applied = apply_remat(&state, a, late).unwrap();
        applied.base.validate().unwrap();
        assert_eq!(applied.base.len(), state.base.len() + 1);
        // `late` no longer reads `a` directly.
        assert!(!applied.base.pre(late).contains(&a));
    }

    #[test]
    fn remat_then_deremat_roundtrip() {
        let (state, a, late) = long_lifetime_state();
        let ctx = EvalContext::default();
        let applied = apply_remat(&state, a, late).unwrap();
        let mid = MState::from_applied(applied, &state, &ctx).unwrap();
        // The clone and the original are duplicates: deremat available.
        let mut cands = Vec::new();
        generate(&mid, &RuleConfig::default(), &mut cands);
        let dr = cands
            .iter()
            .find_map(|t| match t {
                Transform::DeRemat { keep, drop } => Some((*keep, *drop)),
                _ => None,
            })
            .expect("deremat candidate after remat");
        let back = apply_deremat(&mid, dr.0, dr.1).unwrap();
        back.base.validate().unwrap();
        assert_eq!(back.base.len(), state.base.len());
        assert_eq!(
            magis_graph::algo::graph_hash(&back.base),
            magis_graph::algo::graph_hash(&state.base),
            "deremat undoes remat up to isomorphism"
        );
    }

    #[test]
    fn swap_inserts_store_load_pair_and_deswap_removes() {
        let (state, a, late) = long_lifetime_state();
        let ctx = EvalContext::default();
        let applied = apply_swap(&state, a, late).unwrap();
        applied.base.validate().unwrap();
        assert_eq!(applied.base.len(), state.base.len() + 2);
        let mid = MState::from_applied(applied, &state, &ctx).unwrap();
        let load = mid
            .base
            .node_ids()
            .find(|&v| matches!(mid.base.node(v).op, OpKind::Load))
            .unwrap();
        let back = apply_deswap(&mid, load).unwrap();
        back.base.validate().unwrap();
        assert_eq!(
            magis_graph::algo::graph_hash(&back.base),
            magis_graph::algo::graph_hash(&state.base)
        );
    }

    #[test]
    fn swap_reduces_peak_memory() {
        let (state, a, late) = long_lifetime_state();
        let ctx = EvalContext::default();
        let applied = apply_swap(&state, a, late).unwrap();
        let swapped = MState::from_applied(applied, &state, &ctx).unwrap();
        assert!(
            swapped.eval.peak_bytes < state.eval.peak_bytes,
            "swap must shrink peak: {} vs {}",
            swapped.eval.peak_bytes,
            state.eval.peak_bytes
        );
    }

    #[test]
    fn remat_reduces_peak_memory() {
        let (state, a, late) = long_lifetime_state();
        let ctx = EvalContext::default();
        let applied = apply_remat(&state, a, late).unwrap();
        let r = MState::from_applied(applied, &state, &ctx).unwrap();
        assert!(
            r.eval.peak_bytes < state.eval.peak_bytes,
            "remat must shrink peak: {} vs {}",
            r.eval.peak_bytes,
            state.eval.peak_bytes
        );
        assert!(r.eval.latency > state.eval.latency, "remat re-pays compute");
    }

    #[test]
    fn hotspot_filter_prunes_candidates() {
        let (state, _, _) = long_lifetime_state();
        let mut with = Vec::new();
        generate(&state, &RuleConfig::default(), &mut with);
        let mut without = Vec::new();
        let cfg = RuleConfig { hotspot_filter: false, ..RuleConfig::default() };
        generate(&state, &cfg, &mut without);
        assert!(without.len() >= with.len());
    }

    #[test]
    fn stale_targets_error() {
        let (state, a, late) = long_lifetime_state();
        let applied = apply_remat(&state, a, late).unwrap();
        let ctx = EvalContext::default();
        let mid = MState::from_applied(applied, &state, &ctx).unwrap();
        // Re-applying the same remat fails: `late` no longer reads `a`.
        assert!(apply_remat(&mid, a, late).is_err());
    }
}
