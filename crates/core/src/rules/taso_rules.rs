//! TASO-style transformation rules (Fig. 1 (a)/(b) of the paper).
//!
//! A representative subset of the rule families MAGIS borrows from
//! TASO \[25\]:
//!
//! * **A-Trans** — aggregate sibling matmuls/convolutions that share an
//!   input into one larger kernel plus slices (trades transient memory
//!   for latency); the canonical use is merging a transformer block's
//!   Q/K/V projections, which the paper applies to every baseline for
//!   fairness (§7.1).
//! * **I-Trans** — algebraic enablers; here, re-association of `Add`
//!   chains, which exposes new aggregation and fission sites.

use magis_graph::{GraphTxn, GraphView};
use super::{outside_enabled_regions, Applied, ApplyError, RuleConfig, Transform};
use crate::state::MState;
use magis_graph::graph::{Graph, NodeId};
use magis_graph::op::{BinaryKind, Conv2dAttrs, OpKind};
use std::collections::BTreeSet;

/// A concrete TASO rule instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TasoTransform {
    /// Merge two sibling matmuls `X@W1`, `X@W2` into `X@concat(W1,W2)`
    /// + slices (A-Trans, Fig. 1 (a) left).
    MergeMatmuls {
        /// First sibling matmul.
        a: NodeId,
        /// Second sibling matmul.
        b: NodeId,
    },
    /// Merge two sibling convolutions over the same input into one
    /// convolution with concatenated filters + channel slices
    /// (A-Trans, Fig. 1 (a) right).
    MergeConvs {
        /// First sibling convolution.
        a: NodeId,
        /// Second sibling convolution.
        b: NodeId,
    },
    /// Re-associate `(a + b) + c` to `a + (b + c)` (I-Trans,
    /// Fig. 1 (b)).
    RotateAdd {
        /// The outer `Add` of the re-associated pair.
        top: NodeId,
    },
}

/// Generates TASO candidates.
pub fn generate(state: &MState, cfg: &RuleConfig, out: &mut Vec<Transform>) {
    let g = &state.base;
    let mut count = 0usize;
    for x in g.node_ids() {
        if count >= cfg.max_per_rule {
            break;
        }
        // Sibling matmuls / convs over `x`.
        let succs = g.suc(x);
        let mms: Vec<NodeId> = succs
            .iter()
            .copied()
            .filter(|&v| {
                matches!(
                    g.node(v).op,
                    OpKind::MatMul { transpose_a: false, transpose_b: false }
                ) && g.pre(v)[0] == x
                    && g.node(g.pre(v)[1]).op.is_weight_input()
            })
            .collect();
        for pair in mms.windows(2) {
            let set: BTreeSet<NodeId> = pair.iter().copied().collect();
            if outside_enabled_regions(&state.ftree, &set) && mergeable_matmuls(g, pair[0], pair[1])
            {
                out.push(Transform::Taso(TasoTransform::MergeMatmuls { a: pair[0], b: pair[1] }));
                count += 1;
            }
        }
        let convs: Vec<NodeId> = succs
            .iter()
            .copied()
            .filter(|&v| {
                matches!(g.node(v).op, OpKind::Conv2d(_))
                    && g.pre(v)[0] == x
                    && g.node(g.pre(v)[1]).op.is_weight_input()
            })
            .collect();
        for pair in convs.windows(2) {
            let set: BTreeSet<NodeId> = pair.iter().copied().collect();
            if outside_enabled_regions(&state.ftree, &set) && mergeable_convs(g, pair[0], pair[1]) {
                out.push(Transform::Taso(TasoTransform::MergeConvs { a: pair[0], b: pair[1] }));
                count += 1;
            }
        }
    }
    // I-Trans: rotate left-leaning Add chains.
    for v in g.node_ids() {
        if count >= cfg.max_per_rule * 2 {
            break;
        }
        if let OpKind::Binary(BinaryKind::Add) = g.node(v).op {
            let inner = g.pre(v)[0];
            if matches!(g.node(inner).op, OpKind::Binary(BinaryKind::Add))
                && g.use_count(inner) == 1
                && g.node(inner).meta == g.node(v).meta
                && g.node(g.pre(inner)[0]).meta == g.node(v).meta
            {
                let set: BTreeSet<NodeId> = [v, inner].into_iter().collect();
                if outside_enabled_regions(&state.ftree, &set) {
                    out.push(Transform::Taso(TasoTransform::RotateAdd { top: v }));
                    count += 1;
                }
            }
        }
    }
}

fn mergeable_matmuls(g: &Graph, a: NodeId, b: NodeId) -> bool {
    a != b
        && g.pre(a)[0] == g.pre(b)[0]
        && g.node(g.pre(a)[1]).meta.shape.dim(0) == g.node(g.pre(b)[1]).meta.shape.dim(0)
        && g.node(a).meta.dtype == g.node(b).meta.dtype
}

fn mergeable_convs(g: &Graph, a: NodeId, b: NodeId) -> bool {
    let (OpKind::Conv2d(ca), OpKind::Conv2d(cb)) = (&g.node(a).op, &g.node(b).op) else {
        return false;
    };
    a != b
        && ca == cb
        && g.pre(a)[0] == g.pre(b)[0]
        && g.node(g.pre(a)[1]).meta.shape.dims()[1..] == g.node(g.pre(b)[1]).meta.shape.dims()[1..]
}

/// Applies a TASO transform.
pub fn apply(state: &MState, t: &TasoTransform) -> Result<Applied, ApplyError> {
    match *t {
        TasoTransform::MergeMatmuls { a, b } => merge_matmuls(state, a, b),
        TasoTransform::MergeConvs { a, b } => merge_convs(state, a, b),
        TasoTransform::RotateAdd { top } => rotate_add(state, top),
    }
}

/// Combines two weights into one. When both are single-use weight
/// inputs the concatenation is *folded*: a new weight input replaces
/// them (TASO rewrites parameters at compile time, paying no runtime
/// concat). Otherwise an explicit `Concat` node is emitted.
fn combine_weights(
    g: &mut GraphTxn,
    wa: NodeId,
    wb: NodeId,
    axis: usize,
) -> Result<NodeId, ApplyError> {
    let foldable = g.node(wa).op.is_weight_input()
        && g.node(wb).op.is_weight_input()
        && g.use_count(wa) == 1
        && g.use_count(wb) == 1;
    if foldable {
        let ma = g.node(wa).meta.clone();
        let d = ma.shape.dim(axis) + g.node(wb).meta.shape.dim(axis);
        let meta = magis_graph::TensorMeta::new(ma.shape.with_dim(axis, d), ma.dtype);
        Ok(g.add_input(magis_graph::op::InputKind::Weight, meta, "folded_w"))
    } else {
        g.add(OpKind::Concat { axis }, &[wa, wb]).map_err(err)
    }
}

fn merge_matmuls(state: &MState, a: NodeId, b: NodeId) -> Result<Applied, ApplyError> {
    let mut g = GraphTxn::begin(&state.base);
    if !g.contains(a) || !g.contains(b) || !mergeable_matmuls(&state.base, a, b) {
        return Err(ApplyError("stale matmul merge".into()));
    }
    let x = g.pre(a)[0];
    let (wa, wb) = (g.pre(a)[1], g.pre(b)[1]);
    let na = g.node(a).meta.shape.dim(1);
    let nb = g.node(b).meta.shape.dim(1);
    let wc = combine_weights(&mut g, wa, wb, 1)?;
    let y = g
        .add(OpKind::MatMul { transpose_a: false, transpose_b: false }, &[x, wc])
        .map_err(err)?;
    let ya = g.add(OpKind::Slice { axis: 1, start: 0, len: na }, &[y]).map_err(err)?;
    let yb = g.add(OpKind::Slice { axis: 1, start: na, len: nb }, &[y]).map_err(err)?;
    let mutated: BTreeSet<NodeId> =
        [a, b, x].into_iter().chain(g.suc(a)).chain(g.suc(b)).collect();
    g.redirect_uses(a, ya);
    g.redirect_uses(b, yb);
    let (wa2, wb2) = (g.pre(a)[1], g.pre(b)[1]);
    g.remove(a).map_err(err)?;
    g.remove(b).map_err(err)?;
    for w in [wa2, wb2] {
        if g.contains(w) && g.use_count(w) == 0 {
            let _ = g.remove(w);
        }
    }
    let (base, _) = g.commit();
    Ok(Applied { base, ftree: state.ftree.clone(), mutated, tree_stale: true })
}

fn merge_convs(state: &MState, a: NodeId, b: NodeId) -> Result<Applied, ApplyError> {
    let mut g = GraphTxn::begin(&state.base);
    if !g.contains(a) || !g.contains(b) || !mergeable_convs(&state.base, a, b) {
        return Err(ApplyError("stale conv merge".into()));
    }
    let attrs = match g.node(a).op {
        OpKind::Conv2d(c) => c,
        _ => Conv2dAttrs::same(1),
    };
    let x = g.pre(a)[0];
    let (wa, wb) = (g.pre(a)[1], g.pre(b)[1]);
    let oa = g.node(a).meta.shape.dim(1);
    let ob = g.node(b).meta.shape.dim(1);
    let wc = combine_weights(&mut g, wa, wb, 0)?;
    let y = g.add(OpKind::Conv2d(attrs), &[x, wc]).map_err(err)?;
    let ya = g.add(OpKind::Slice { axis: 1, start: 0, len: oa }, &[y]).map_err(err)?;
    let yb = g.add(OpKind::Slice { axis: 1, start: oa, len: ob }, &[y]).map_err(err)?;
    let mutated: BTreeSet<NodeId> =
        [a, b, x].into_iter().chain(g.suc(a)).chain(g.suc(b)).collect();
    g.redirect_uses(a, ya);
    g.redirect_uses(b, yb);
    let (wa2, wb2) = (g.pre(a)[1], g.pre(b)[1]);
    g.remove(a).map_err(err)?;
    g.remove(b).map_err(err)?;
    for w in [wa2, wb2] {
        if g.contains(w) && g.use_count(w) == 0 {
            let _ = g.remove(w);
        }
    }
    let (base, _) = g.commit();
    Ok(Applied { base, ftree: state.ftree.clone(), mutated, tree_stale: true })
}

fn rotate_add(state: &MState, top: NodeId) -> Result<Applied, ApplyError> {
    let mut g = GraphTxn::begin(&state.base);
    if !g.contains(top) || !matches!(g.node(top).op, OpKind::Binary(BinaryKind::Add)) {
        return Err(ApplyError("stale add rotation".into()));
    }
    let inner = g.pre(top)[0];
    if !matches!(g.node(inner).op, OpKind::Binary(BinaryKind::Add)) || g.use_count(inner) != 1 {
        return Err(ApplyError("inner add gone".into()));
    }
    let (a, b) = (g.pre(inner)[0], g.pre(inner)[1]);
    let c = g.pre(top)[1];
    let bc = g.add(OpKind::Binary(BinaryKind::Add), &[b, c]).map_err(err)?;
    let abc = g.add(OpKind::Binary(BinaryKind::Add), &[a, bc]).map_err(err)?;
    let mutated: BTreeSet<NodeId> =
        [top, inner, a, b, c].into_iter().chain(g.suc(top)).collect();
    g.redirect_uses(top, abc);
    g.remove(top).map_err(err)?;
    g.remove(inner).map_err(err)?;
    let (base, _) = g.commit();
    Ok(Applied { base, ftree: state.ftree.clone(), mutated, tree_stale: true })
}

fn err(e: magis_graph::GraphError) -> ApplyError {
    ApplyError(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{EvalContext, MState};
    use magis_graph::builder::GraphBuilder;
    use magis_graph::tensor::DType;

    /// Q/K/V-style three sibling projections.
    fn qkv_state() -> MState {
        let mut bld = GraphBuilder::new(DType::F32);
        let x = bld.input([64, 128], "x");
        let wq = bld.weight([128, 128], "wq");
        let wk = bld.weight([128, 128], "wk");
        let q = bld.matmul(x, wq);
        let k = bld.matmul(x, wk);
        let _o = bld.add_op(q, k);
        MState::initial(bld.finish(), &EvalContext::default())
    }

    #[test]
    fn merge_matmuls_generated_and_applied() {
        let state = qkv_state();
        let mut cands = Vec::new();
        generate(&state, &RuleConfig::default(), &mut cands);
        let mm = cands
            .iter()
            .find_map(|t| match t {
                Transform::Taso(tt @ TasoTransform::MergeMatmuls { .. }) => Some(*tt),
                _ => None,
            })
            .expect("sibling matmuls found");
        let applied = apply(&state, &mm).unwrap();
        applied.base.validate().unwrap();
        // One fewer matmul, one concat, one big matmul, two slices.
        let n_mm = applied
            .base
            .node_ids()
            .filter(|&v| matches!(applied.base.node(v).op, OpKind::MatMul { .. }))
            .count();
        assert_eq!(n_mm, 1);
        // Both projections were single-use weights: the concatenation
        // is folded into one new weight input, no runtime concat.
        let folded = applied
            .base
            .node_ids()
            .find(|&v| {
                applied.base.node(v).op.is_weight_input()
                    && applied.base.node(v).meta.shape.dims() == [128, 256]
            })
            .expect("folded weight input");
        assert!(applied.base.use_count(folded) > 0);
        assert!(!applied
            .base
            .node_ids()
            .any(|v| matches!(applied.base.node(v).op, OpKind::Concat { .. })));
    }

    #[test]
    fn merge_matmuls_improves_latency_costs_memory() {
        let state = qkv_state();
        let ctx = EvalContext::default();
        let mut cands = Vec::new();
        generate(&state, &RuleConfig::default(), &mut cands);
        let mm = cands
            .iter()
            .find_map(|t| match t {
                Transform::Taso(tt @ TasoTransform::MergeMatmuls { .. }) => Some(*tt),
                _ => None,
            })
            .unwrap();
        let merged = MState::from_applied(apply(&state, &mm).unwrap(), &state, &ctx).unwrap();
        assert!(
            merged.eval.latency < state.eval.latency,
            "aggregation trades memory for latency: {} vs {}",
            merged.eval.latency,
            state.eval.latency
        );
    }

    #[test]
    fn merge_convs_applied() {
        let mut bld = GraphBuilder::new(DType::F32);
        let x = bld.input([4, 16, 32, 32], "x");
        let w1 = bld.weight([32, 16, 3, 3], "w1");
        let w2 = bld.weight([32, 16, 3, 3], "w2");
        let c1 = bld.conv2d(x, w1, Conv2dAttrs::same(1));
        let c2 = bld.conv2d(x, w2, Conv2dAttrs::same(1));
        let _o = bld.add_op(c1, c2);
        let state = MState::initial(bld.finish(), &EvalContext::default());
        let applied = apply(&state, &TasoTransform::MergeConvs { a: c1, b: c2 }).unwrap();
        applied.base.validate().unwrap();
        let conv = applied
            .base
            .node_ids()
            .find(|&v| matches!(applied.base.node(v).op, OpKind::Conv2d(_)))
            .unwrap();
        assert_eq!(applied.base.node(conv).meta.shape.dims(), &[4, 64, 32, 32]);
    }

    #[test]
    fn rotate_add_preserves_shape() {
        let mut bld = GraphBuilder::new(DType::F32);
        let a = bld.input([8, 8], "a");
        let b = bld.input([8, 8], "b");
        let c = bld.input([8, 8], "c");
        let ab = bld.add_op(a, b);
        let abc = bld.add_op(ab, c);
        let _t = bld.relu(abc);
        let state = MState::initial(bld.finish(), &EvalContext::default());
        let applied = apply(&state, &TasoTransform::RotateAdd { top: abc }).unwrap();
        applied.base.validate().unwrap();
        assert_eq!(applied.base.len(), state.base.len());
    }
}
