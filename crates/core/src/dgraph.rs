//! The Dimension Graph (D-Graph, §4.1 of the paper).
//!
//! A vertex `⟨v, i⟩` exists for every output dimension (`i > 0`,
//! 1-based) and every reduce axis (`i < 0`) of every operator that
//! participates (weights and labels are excluded — fission shares them
//! rather than slicing, §4.2). An edge connects dimensions of
//! producer and consumer tensors that index the same spatial axis, or a
//! producer dimension to the consumer's reduce axis it feeds.
//!
//! Weakly connected components of the D-Graph are the "graph-level
//! dimensions" (batch, heads, sequence, …) that a fission
//! transformation can split along.

use magis_graph::GraphView;
use magis_graph::graph::{Graph, NodeId};
use magis_graph::op::DimLink;
use std::collections::{BTreeMap, BTreeSet};

/// A D-Graph vertex `⟨node, dim⟩`: `dim > 0` is the 1-based output
/// dimension, `dim < 0` is the (negated, 1-based) reduce axis.
pub type DimVertex = (NodeId, i32);

/// The Dimension Graph `D(G)`.
#[derive(Debug, Clone, Default)]
pub struct DimGraph {
    /// Undirected adjacency (both directions stored).
    adj: BTreeMap<DimVertex, BTreeSet<DimVertex>>,
}

impl DimGraph {
    /// Builds `D(G)`.
    pub fn build(g: &Graph) -> Self {
        let mut adj: BTreeMap<DimVertex, BTreeSet<DimVertex>> = BTreeMap::new();
        // Vertices.
        for v in g.node_ids() {
            let n = g.node(v);
            if !n.op.in_dim_graph() {
                continue;
            }
            for i in 1..=n.meta.shape.rank() as i32 {
                adj.entry((v, i)).or_default();
            }
            for r in 1..=n.op.num_reduce_axes() as i32 {
                adj.entry((v, -r)).or_default();
            }
        }
        // Edges.
        for v in g.node_ids() {
            let n = g.node(v);
            if !n.op.in_dim_graph() || n.op.is_input() {
                continue;
            }
            let input_metas: Vec<_> = n.inputs().iter().map(|&u| g.node(u).meta.clone()).collect();
            let links = n.op.input_dim_links(&input_metas, &n.meta);
            for (slot, &u) in n.inputs().iter().enumerate() {
                if !g.node(u).op.in_dim_graph() {
                    continue;
                }
                for (i, link) in links[slot].iter().enumerate() {
                    let uv = (u, i as i32 + 1);
                    let vv = match link {
                        DimLink::Spatial(j) => (v, *j as i32 + 1),
                        // Windowed links join the same spatial axis;
                        // halo costs are applied at fission time.
                        DimLink::Windowed { dim, .. } => (v, *dim as i32 + 1),
                        DimLink::Reduce(r) => (v, -(*r as i32 + 1)),
                        DimLink::Unlinked => continue,
                    };
                    if adj.contains_key(&uv) && adj.contains_key(&vv) {
                        // Unwrap audit: both keys checked present on
                        // the line above.
                        adj.get_mut(&uv).expect("vertex").insert(vv);
                        adj.get_mut(&vv).expect("vertex").insert(uv);
                    }
                }
            }
        }
        DimGraph { adj }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the D-Graph is empty.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbours of a vertex.
    pub fn neighbours(&self, v: DimVertex) -> impl Iterator<Item = DimVertex> + '_ {
        self.adj.get(&v).into_iter().flatten().copied()
    }

    /// All vertices.
    pub fn vertices(&self) -> impl Iterator<Item = DimVertex> + '_ {
        self.adj.keys().copied()
    }

    /// Weakly connected components with more than one vertex (a lone
    /// dimension connects nothing and cannot drive a fission).
    pub fn components(&self) -> Vec<BTreeSet<DimVertex>> {
        let mut remaining: BTreeSet<DimVertex> = self.adj.keys().copied().collect();
        let mut out = Vec::new();
        while let Some(&seed) = remaining.iter().next() {
            remaining.remove(&seed);
            let mut comp = BTreeSet::new();
            let mut stack = vec![seed];
            while let Some(v) = stack.pop() {
                comp.insert(v);
                for n in self.neighbours(v) {
                    if remaining.remove(&n) {
                        stack.push(n);
                    }
                }
            }
            if comp.len() > 1 {
                out.push(comp);
            }
        }
        out
    }
}

/// Restricts a component to a node subset and extracts the per-node dim
/// choice. Returns `None` if some node of `set` has no vertex or more
/// than one vertex in the component (constraint (3) of §4.2 requires
/// exactly one).
pub fn component_dims(
    component: &BTreeSet<DimVertex>,
    set: &BTreeSet<NodeId>,
) -> Option<BTreeMap<NodeId, i32>> {
    let mut dims: BTreeMap<NodeId, i32> = BTreeMap::new();
    for &(v, d) in component {
        if set.contains(&v) && dims.insert(v, d).is_some() {
            return None; // two dims of one node in the same component
        }
    }
    if dims.len() == set.len() {
        Some(dims)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_graph::builder::GraphBuilder;
    use magis_graph::tensor::DType;

    #[test]
    fn matmul_chain_batch_dimension_flows() {
        // x[b,k] @ w[k,m] -> h; h @ w2[m,c] -> y: the batch dim of x,
        // h, y forms one component; k/m inner dims form others.
        let mut bld = GraphBuilder::new(DType::F32);
        let x = bld.input([32, 64], "x");
        let w = bld.weight([64, 16], "w");
        let h = bld.matmul(x, w);
        let w2 = bld.weight([16, 8], "w2");
        let y = bld.matmul(h, w2);
        let g = bld.finish();
        let d = DimGraph::build(&g);
        // Weights excluded entirely.
        assert!(d.vertices().all(|(v, _)| v != w && v != w2));
        let comps = d.components();
        // Find the component containing ⟨x,1⟩ (batch).
        let batch = comps.iter().find(|c| c.contains(&(x, 1))).unwrap();
        assert!(batch.contains(&(h, 1)));
        assert!(batch.contains(&(y, 1)));
        // The batch component has no reduce vertices.
        assert!(batch.iter().all(|&(_, dim)| dim > 0));
    }

    #[test]
    fn reduce_axis_vertices_created() {
        let mut bld = GraphBuilder::new(DType::F32);
        let x = bld.input([32, 64], "x");
        let w = bld.weight([64, 16], "w");
        let h = bld.matmul(x, w);
        let g = bld.finish();
        let d = DimGraph::build(&g);
        // ⟨h,-1⟩ exists and connects to ⟨x,2⟩ (the contracted dim).
        let nbrs: Vec<_> = d.neighbours((h, -1)).collect();
        assert!(nbrs.contains(&(x, 2)));
    }

    #[test]
    fn weight_gradient_pattern_like_paper_fig5() {
        // dW = xᵀ @ dy contracts over the batch dim: the batch
        // component must reach dW only through its reduce axis, exactly
        // the v8 case of Fig. 5.
        let mut bld = GraphBuilder::new(DType::F32);
        let x = bld.input([32, 64], "x");
        let dy = bld.input([32, 16], "dy");
        let dw = bld.matmul_t(x, dy, true, false); // [64, 16]
        let g = bld.finish();
        let d = DimGraph::build(&g);
        let comps = d.components();
        let batch = comps.iter().find(|c| c.contains(&(x, 1))).unwrap();
        assert!(batch.contains(&(dy, 1)));
        assert!(batch.contains(&(dw, -1)), "batch reaches dW as a reduce axis");
        assert!(!batch.contains(&(dw, 1)) && !batch.contains(&(dw, 2)));
    }

    #[test]
    fn attention_sequence_component_spans_softmax() {
        // Fig. 4: the sequence dim runs through scores and softmax.
        let (bsz, t, c) = (2, 8, 16);
        let mut bld = GraphBuilder::new(DType::F32);
        let q = bld.input([bsz, t, c], "q");
        let k = bld.input([bsz, t, c], "k");
        let v = bld.input([bsz, t, c], "v");
        let scores = bld.batch_matmul_t(q, k, false, true); // [b,t,t]
        let p = bld.softmax(scores, 2);
        let o = bld.batch_matmul(p, v); // [b,t,c]
        let g = bld.finish();
        let d = DimGraph::build(&g);
        let comps = d.components();
        // Component of ⟨q,2⟩ (query positions): scores dim 2, p dim 2, o dim 2.
        let seq = comps.iter().find(|cm| cm.contains(&(q, 2))).unwrap();
        assert!(seq.contains(&(scores, 2)));
        assert!(seq.contains(&(p, 2)));
        assert!(seq.contains(&(o, 2)));
        // Key positions flow to scores dim 3, softmax dim 3 and o's
        // reduce axis — possibly the same weak component via k.
        let key_side = comps.iter().find(|cm| cm.contains(&(k, 2))).unwrap();
        assert!(key_side.contains(&(scores, 3)));
        assert!(key_side.contains(&(o, -1)));
    }

    #[test]
    fn component_dims_uniqueness() {
        let mut bld = GraphBuilder::new(DType::F32);
        let x = bld.input([4, 4], "x");
        // y = x @ xᵀ: both dims of x join one component through y.
        let y = bld.matmul_t(x, x, false, true);
        let g = bld.finish();
        let d = DimGraph::build(&g);
        let comps = d.components();
        let set: BTreeSet<NodeId> = [x, y].into_iter().collect();
        // The spatial component joins both of y's dims through x's
        // rows: not a unique per-node choice -> rejected. The
        // contraction component (⟨x,2⟩, ⟨y,-1⟩) is unique: splitting
        // the inner product into partial sums is legitimate.
        let selections: Vec<_> =
            comps.iter().filter_map(|c| component_dims(c, &set)).collect();
        assert_eq!(selections.len(), 1);
        assert_eq!(selections[0][&x], 2);
        assert_eq!(selections[0][&y], -1);
    }
}
