//! Search checkpoint/resume: periodic serialization of the
//! M-Optimizer's state so a killed search can restart from its last
//! incumbent instead of from the seed graph.
//!
//! Format: a versioned, line-oriented text file with no external
//! dependencies (the repo is fully offline). Floating-point values are
//! stored as bit patterns (`f64::to_bits` in hex) so a checkpoint
//! round-trip is bit-exact and resume preserves determinism. The
//! incumbent is stored as **two** graph records plus the exact
//! schedule: its base graph and the overlaid (fission-applied) graph
//! that was actually simulated. On resume the stored schedule is
//! re-simulated rather than re-scheduled — re-scheduling could land on
//! a different (worse) evaluation than the one that won incumbency.
//!
//! Since v3 a checkpoint can additionally carry the **frontier**: every
//! entry still on the priority queue, each with its sequence number,
//! staleness flag, and the same order/F-Tree/graph-record block as the
//! incumbent. A frontier-bearing checkpoint resumes *exactly* — the
//! queue, seen-set, and sequence counter are reconstructed verbatim,
//! so a killed-and-resumed search replays the identical trajectory and
//! finishes bit-identical to an uninterrupted run (given deterministic
//! stopping, i.e. a candidate cap rather than wall clock). Frontier-
//! free checkpoints (v1/v2, or v3 written without the frontier policy)
//! keep the legacy best-effort resume: the incumbent is re-seeded and
//! the search re-explores from there.
//!
//! Since v4 a checkpoint is **driver-tagged**: a `driver` line right
//! after the header names the search engine that wrote it (`greedy` or
//! `mcts`), and an MCTS checkpoint additionally stores the tree
//! metadata (parent/visit/reward per node, plus the RNG state) beside
//! the frontier, whose entries then carry the node states. Resume
//! restores the checkpoint's engine regardless of the caller's
//! configured driver. v1–v3 checkpoints decode as `greedy`.
//!
//! The optimizer's configuration (objective, budget, thread count,
//! rule set) is deliberately **not** stored: the resuming caller's
//! config is authoritative, so a checkpoint can be resumed under a
//! different budget or thread count without surgery.

use magis_graph::GraphView;
use crate::driver::DriverKind;
use crate::ftree::{FTree, FTreeNode};
use crate::fission::FissionSpec;
use crate::state::{EvalContext, EvalError, MState};
use magis_graph::graph::NodeId;
use magis_graph::io::{self, RecordError};
use magis_sched::{validate_schedule, ScheduleError};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::Path;

const CKPT_HEADER: &str = "magis-checkpoint v4";
/// v3: no `driver` line and no MCTS tree section (decodes as the
/// greedy driver).
const CKPT_HEADER_V3: &str = "magis-checkpoint v3";
/// v2: no `next_seq` / `frontier` sections (resumes with an empty
/// frontier, i.e. the legacy incumbent-reseed path).
const CKPT_HEADER_V2: &str = "magis-checkpoint v2";
/// v1: additionally, the `counters` line carries 8 fields (no
/// checkpoint-write accounting). Still readable; the missing counters
/// resume as zero.
const CKPT_HEADER_V1: &str = "magis-checkpoint v1";
const CKPT_FOOTER: &str = "ckpt-end";

/// Why loading or restoring a checkpoint failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (path kept in the message).
    Io(String),
    /// A malformed line in the checkpoint body.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// The embedded graph record failed to parse or validate.
    Record(RecordError),
    /// The stored schedule is not a valid schedule of the stored graph.
    Schedule(ScheduleError),
    /// Re-simulating the stored incumbent failed.
    Eval(EvalError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O: {msg}"),
            CheckpointError::Parse { line, msg } => {
                write!(f, "checkpoint line {line}: {msg}")
            }
            CheckpointError::Record(e) => write!(f, "checkpoint graph record: {e}"),
            CheckpointError::Schedule(e) => write!(f, "checkpoint schedule: {e}"),
            CheckpointError::Eval(e) => write!(f, "checkpoint re-evaluation: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<RecordError> for CheckpointError {
    fn from(e: RecordError) -> Self {
        CheckpointError::Record(e)
    }
}

impl From<ScheduleError> for CheckpointError {
    fn from(e: ScheduleError) -> Self {
        CheckpointError::Schedule(e)
    }
}

impl From<EvalError> for CheckpointError {
    fn from(e: EvalError) -> Self {
        CheckpointError::Eval(e)
    }
}

/// Search-progress counters carried across a resume so stats stay
/// cumulative over the whole (interrupted) search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointCounters {
    /// States expanded.
    pub expanded: u64,
    /// Candidates evaluated.
    pub evaluated: u64,
    /// Candidates generated.
    pub candidates: u64,
    /// Candidates filtered as duplicates.
    pub filtered: u64,
    /// Candidate evaluations that panicked (sandboxed).
    pub panicked: u64,
    /// Candidates rejected for defective costs.
    pub cost_rejections: u64,
    /// Candidates rejected by invariant enforcement.
    pub invariant_rejections: u64,
    /// Candidates skipped because their rule family was quarantined.
    pub quarantined_candidates: u64,
    /// Checkpoints successfully written (v2; zero when resuming a v1
    /// checkpoint).
    pub checkpoints_written: u64,
    /// Checkpoint writes that failed (v2; zero when resuming a v1
    /// checkpoint).
    pub checkpoint_failures: u64,
}

/// One priority-queue entry captured in a frontier-bearing (v3)
/// checkpoint: the state's serialized parts plus the queue bookkeeping
/// (sequence number, staleness) needed to reconstruct the heap
/// verbatim.
#[derive(Debug, Clone)]
pub struct FrontierEntry {
    /// The entry's queue sequence number (FIFO tiebreak within equal
    /// objective keys — restoring it preserves pop order exactly).
    pub seq: u64,
    /// Whether the state's F-Tree needed re-analysis before expansion.
    pub tree_stale: bool,
    /// The state's schedule as arena indices into its eval graph.
    pub order: Vec<usize>,
    /// The state's F-Tree nodes.
    pub ftree_nodes: Vec<FTreeNode>,
    /// Graph record of the state's base graph.
    pub base_record: String,
    /// Graph record of the state's overlaid (simulated) graph.
    pub eval_record: String,
}

/// Per-node MCTS tree metadata stored beside a frontier entry (v4).
/// The entry at the same position in the frontier carries the node's
/// state; this struct carries everything else the tree needs.
#[derive(Debug, Clone, PartialEq)]
pub struct MctsNodeMeta {
    /// Arena index of the parent node; `None` for the root.
    pub parent: Option<u64>,
    /// The candidate index (within the parent's sorted batch) that
    /// produced this node — the UCT tie-break key.
    pub cand_index: u64,
    /// Visit count accumulated by backpropagation.
    pub visits: u64,
    /// Total reward accumulated by backpropagation.
    pub reward_sum: f64,
    /// Whether the node's candidate batch has been expanded.
    pub expanded: bool,
}

/// MCTS engine state stored in a v4 frontier-bearing checkpoint: the
/// driver's RNG state plus one [`MctsNodeMeta`] per frontier entry (in
/// arena order). Restoring it resumes the tree — and the rollout RNG
/// stream — exactly where the checkpoint left off.
#[derive(Debug, Clone, PartialEq)]
pub struct MctsCheckpoint {
    /// Raw RNG state ([`magis_util::rng::SmallRng::state`]).
    pub rng_state: u64,
    /// Tree metadata, index-aligned with the checkpoint's frontier.
    pub nodes: Vec<MctsNodeMeta>,
}

/// A serializable snapshot of the M-Optimizer's search state.
#[derive(Debug, Clone)]
pub struct SearchCheckpoint {
    /// RNG seed of the search (naïve-fission ablation determinism).
    pub rng_seed: u64,
    /// `(peak_bytes, latency)` of the unoptimized seed state.
    pub seed_cost: (u64, f64),
    /// `(peak_bytes, latency)` of the incumbent at checkpoint time.
    pub best_cost: (u64, f64),
    /// Cumulative progress counters.
    pub counters: CheckpointCounters,
    /// Pareto frontier points `(peak_bytes, latency)`.
    pub pareto: Vec<(u64, f64)>,
    /// Graph hashes already explored (includes the incumbent's own).
    pub seen: Vec<u64>,
    /// Quarantine strikes per rule family (`Transform::sort_key().0`).
    pub quarantine: Vec<(u8, u32)>,
    /// The incumbent's schedule as arena indices into the eval graph.
    pub best_order: Vec<usize>,
    /// The incumbent's F-Tree nodes.
    pub ftree_nodes: Vec<FTreeNode>,
    /// Graph record of the incumbent's base graph.
    pub base_record: String,
    /// Graph record of the incumbent's overlaid (simulated) graph.
    pub eval_record: String,
    /// The sequence counter's next value (v3; `0` in legacy
    /// checkpoints — only meaningful when `frontier` is non-empty).
    pub next_seq: u64,
    /// The priority-queue frontier at checkpoint time, sorted by
    /// sequence number (v3; empty in legacy checkpoints and when the
    /// checkpoint policy doesn't request frontier capture). Non-empty
    /// frontiers make resume trajectory-exact.
    pub frontier: Vec<FrontierEntry>,
    /// The search engine that wrote this checkpoint (v4; legacy
    /// checkpoints decode as [`DriverKind::Greedy`]). Resume restores
    /// this engine, not the caller's configured one.
    pub driver: DriverKind,
    /// MCTS tree metadata (v4, MCTS frontier checkpoints only).
    pub mcts: Option<MctsCheckpoint>,
}

fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_u64(tok: &str, line: usize, what: &str) -> Result<u64, CheckpointError> {
    tok.parse::<u64>().map_err(|_| CheckpointError::Parse {
        line,
        msg: format!("bad {what} '{tok}'"),
    })
}

fn parse_usize(tok: &str, line: usize, what: &str) -> Result<usize, CheckpointError> {
    tok.parse::<usize>().map_err(|_| CheckpointError::Parse {
        line,
        msg: format!("bad {what} '{tok}'"),
    })
}

fn parse_f64_hex(tok: &str, line: usize, what: &str) -> Result<f64, CheckpointError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError::Parse { line, msg: format!("bad {what} bits '{tok}'") })
}

fn parse_hex_u64(tok: &str, line: usize, what: &str) -> Result<u64, CheckpointError> {
    u64::from_str_radix(tok, 16).map_err(|_| CheckpointError::Parse {
        line,
        msg: format!("bad {what} '{tok}'"),
    })
}

/// `+`-joined list of usizes; `-` for empty.
fn join_plus<I: IntoIterator<Item = usize>>(it: I) -> String {
    let parts: Vec<String> = it.into_iter().map(|v| v.to_string()).collect();
    if parts.is_empty() { "-".to_string() } else { parts.join("+") }
}

fn parse_plus(tok: &str, line: usize, what: &str) -> Result<Vec<usize>, CheckpointError> {
    if tok == "-" {
        return Ok(Vec::new());
    }
    tok.split('+').map(|t| parse_usize(t, line, what)).collect()
}

// ---- shared state-block emitters (incumbent + frontier entries) ----

fn encode_order(out: &mut String, order: &[usize]) {
    out.push_str(&format!("order {}\n", order.len()));
    for chunk in order.chunks(16) {
        out.push('o');
        for i in chunk {
            out.push_str(&format!(" {i}"));
        }
        out.push('\n');
    }
}

fn encode_ftree(out: &mut String, nodes: &[FTreeNode]) {
    out.push_str(&format!("ftree {}\n", nodes.len()));
    for n in nodes {
        let parent = match n.parent {
            Some(p) => p.to_string(),
            None => "-".to_string(),
        };
        let dims = if n.spec.dims.is_empty() {
            "-".to_string()
        } else {
            n.spec
                .dims
                .iter()
                .map(|(v, d)| format!("{}:{}", v.index(), d))
                .collect::<Vec<_>>()
                .join("+")
        };
        out.push_str(&format!(
            "f {parent} {} {} ch={} set={} dims={dims}\n",
            n.level,
            n.spec.parts,
            join_plus(n.children.iter().copied()),
            join_plus(n.spec.set.iter().map(|v| v.index())),
        ));
    }
}

fn encode_graph(out: &mut String, tag: &str, rec: &str) {
    let nlines = rec.lines().count();
    out.push_str(&format!("{tag} {nlines}\n"));
    out.push_str(rec);
    if !rec.ends_with('\n') {
        out.push('\n');
    }
}

// ---- shared state-block parsers ----

fn next_line(lines: &[&str], ln: &mut usize) -> Result<String, CheckpointError> {
    let i = *ln;
    if i >= lines.len() {
        return Err(CheckpointError::Parse {
            line: i + 1,
            msg: "unexpected end of checkpoint".to_string(),
        });
    }
    *ln = i + 1;
    Ok(lines[i].to_string())
}

fn expect_kv(
    line: String,
    ln: usize,
    key: &str,
    arity: usize,
) -> Result<Vec<String>, CheckpointError> {
    let toks: Vec<String> = line.split_whitespace().map(str::to_string).collect();
    if toks.len() != arity + 1 || toks[0] != key {
        return Err(CheckpointError::Parse {
            line: ln,
            msg: format!("expected '{key}' with {arity} fields, got '{line}'"),
        });
    }
    Ok(toks[1..].to_vec())
}

fn decode_order(lines: &[&str], ln: &mut usize) -> Result<Vec<usize>, CheckpointError> {
    let t = expect_kv(next_line(lines, ln)?, *ln, "order", 1)?;
    let no = parse_usize(&t[0], *ln, "order count")?;
    let mut order = Vec::with_capacity(no);
    while order.len() < no {
        let line = next_line(lines, ln)?;
        let mut toks = line.split_whitespace();
        if toks.next() != Some("o") {
            return Err(CheckpointError::Parse {
                line: *ln,
                msg: format!("expected 'o' order line, got '{line}'"),
            });
        }
        for tok in toks {
            order.push(parse_usize(tok, *ln, "order index")?);
        }
        if order.len() > no {
            return Err(CheckpointError::Parse {
                line: *ln,
                msg: format!("more order entries than declared ({no})"),
            });
        }
    }
    Ok(order)
}

fn decode_ftree(lines: &[&str], ln: &mut usize) -> Result<Vec<FTreeNode>, CheckpointError> {
    let t = expect_kv(next_line(lines, ln)?, *ln, "ftree", 1)?;
    let nf = parse_usize(&t[0], *ln, "ftree count")?;
    let mut ftree_nodes = Vec::with_capacity(nf);
    for _ in 0..nf {
        let line = next_line(lines, ln)?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 7 || toks[0] != "f" {
            return Err(CheckpointError::Parse {
                line: *ln,
                msg: format!("expected 'f' node line with 6 fields, got '{line}'"),
            });
        }
        let parent = if toks[1] == "-" {
            None
        } else {
            Some(parse_usize(toks[1], *ln, "parent")?)
        };
        let level = parse_usize(toks[2], *ln, "level")?;
        let parts = parse_u64(toks[3], *ln, "parts")?;
        let ch = toks[4].strip_prefix("ch=").ok_or_else(|| CheckpointError::Parse {
            line: *ln,
            msg: format!("expected ch= field, got '{}'", toks[4]),
        })?;
        let children = parse_plus(ch, *ln, "child index")?;
        let set_tok = toks[5].strip_prefix("set=").ok_or_else(|| CheckpointError::Parse {
            line: *ln,
            msg: format!("expected set= field, got '{}'", toks[5]),
        })?;
        let set: BTreeSet<NodeId> = parse_plus(set_tok, *ln, "set node")?
            .into_iter()
            .map(NodeId::from_index)
            .collect();
        let dims_tok = toks[6].strip_prefix("dims=").ok_or_else(|| CheckpointError::Parse {
            line: *ln,
            msg: format!("expected dims= field, got '{}'", toks[6]),
        })?;
        let mut dims: BTreeMap<NodeId, i32> = BTreeMap::new();
        if dims_tok != "-" {
            for pair in dims_tok.split('+') {
                let (v, d) = pair.split_once(':').ok_or_else(|| CheckpointError::Parse {
                    line: *ln,
                    msg: format!("bad dims pair '{pair}'"),
                })?;
                let v = parse_usize(v, *ln, "dims node")?;
                let d: i32 = d.parse().map_err(|_| CheckpointError::Parse {
                    line: *ln,
                    msg: format!("bad dims value '{d}'"),
                })?;
                dims.insert(NodeId::from_index(v), d);
            }
        }
        ftree_nodes.push(FTreeNode {
            spec: FissionSpec { set, dims, parts },
            parent,
            children,
            level,
        });
    }
    // Parent/children indices must stay inside the forest.
    for (i, n) in ftree_nodes.iter().enumerate() {
        let bad = n.parent.iter().chain(n.children.iter()).find(|&&j| j >= nf);
        if let Some(&j) = bad {
            return Err(CheckpointError::Parse {
                line: *ln,
                msg: format!("ftree node {i} references out-of-range node {j}"),
            });
        }
    }
    Ok(ftree_nodes)
}

fn decode_graph(tag: &str, lines: &[&str], ln: &mut usize) -> Result<String, CheckpointError> {
    let line = next_line(lines, ln)?;
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.len() != 2 || toks[0] != tag {
        return Err(CheckpointError::Parse {
            line: *ln,
            msg: format!("expected '{tag} <lines>', got '{line}'"),
        });
    }
    let n = parse_usize(toks[1], *ln, "graph line count")?;
    let mut rec = String::new();
    for _ in 0..n {
        rec.push_str(&next_line(lines, ln)?);
        rec.push('\n');
    }
    Ok(rec)
}

/// Rebuilds one [`MState`] from its checkpointed parts: both graph
/// records restored and re-validated, F-Tree references checked against
/// the base graph, the stored schedule validated against the eval graph
/// and re-simulated under `ctx`. Shared by the incumbent and frontier
/// restore paths.
fn restore_parts(
    order: &[usize],
    ftree_nodes: &[FTreeNode],
    base_record: &str,
    eval_record: &str,
    ctx: &EvalContext,
) -> Result<MState, CheckpointError> {
    let base = io::from_record(base_record)?;
    let eval_graph = io::from_record(eval_record)?;
    for (i, n) in ftree_nodes.iter().enumerate() {
        if let Some(&v) = n.spec.set.iter().find(|v| !base.contains(**v)) {
            return Err(CheckpointError::Parse {
                line: 0,
                msg: format!("ftree node {i} references node {v} absent from the base graph"),
            });
        }
    }
    let order: Vec<NodeId> = order.iter().map(|&i| NodeId::from_index(i)).collect();
    validate_schedule(&eval_graph, &order)?;
    let ftree = FTree::from_nodes(ftree_nodes.to_vec());
    Ok(MState::resume(base, ftree, eval_graph, order, ctx)?)
}

impl SearchCheckpoint {
    /// Captures the serializable parts of an incumbent state. Search
    /// bookkeeping (pareto, seen, quarantine, counters) is filled in by
    /// the optimizer.
    ///
    /// A stale F-Tree is stored as empty: a `tree_stale` state's tree
    /// is discarded and rebuilt by analysis before any expansion, and
    /// an inherited stale tree may dangle (a TASO rewrite can remove
    /// base nodes its spec sets still reference), which would fail the
    /// restore-time validation for a tree that never gets used.
    pub fn snapshot_state(best: &MState) -> (Vec<usize>, Vec<FTreeNode>, String, String) {
        let order: Vec<usize> = best.eval.order.iter().map(|v| v.index()).collect();
        let nodes: Vec<FTreeNode> =
            if best.tree_stale { Vec::new() } else { best.ftree.nodes().to_vec() };
        (order, nodes, io::to_record(&best.base), io::to_record(&best.eval.graph))
    }

    /// Serializes the checkpoint to its text form.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(CKPT_HEADER);
        out.push('\n');
        out.push_str(&format!("driver {}\n", self.driver.as_str()));
        out.push_str(&format!("rng {:016x}\n", self.rng_seed));
        out.push_str(&format!(
            "seed_cost {} {}\n",
            self.seed_cost.0,
            f64_hex(self.seed_cost.1)
        ));
        out.push_str(&format!(
            "best_cost {} {}\n",
            self.best_cost.0,
            f64_hex(self.best_cost.1)
        ));
        let c = &self.counters;
        out.push_str(&format!(
            "counters {} {} {} {} {} {} {} {} {} {}\n",
            c.expanded,
            c.evaluated,
            c.candidates,
            c.filtered,
            c.panicked,
            c.cost_rejections,
            c.invariant_rejections,
            c.quarantined_candidates,
            c.checkpoints_written,
            c.checkpoint_failures
        ));
        out.push_str(&format!("pareto {}\n", self.pareto.len()));
        for &(m, l) in &self.pareto {
            out.push_str(&format!("p {m} {}\n", f64_hex(l)));
        }
        out.push_str(&format!("seen {}\n", self.seen.len()));
        for chunk in self.seen.chunks(16) {
            out.push('s');
            for h in chunk {
                out.push_str(&format!(" {h:016x}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("quarantine {}\n", self.quarantine.len()));
        for &(fam, strikes) in &self.quarantine {
            out.push_str(&format!("q {fam} {strikes}\n"));
        }
        encode_order(&mut out, &self.best_order);
        encode_ftree(&mut out, &self.ftree_nodes);
        out.push_str(&format!("next_seq {}\n", self.next_seq));
        out.push_str(&format!("frontier {}\n", self.frontier.len()));
        for e in &self.frontier {
            out.push_str(&format!(
                "entry {} {}\n",
                e.seq,
                if e.tree_stale { 1 } else { 0 }
            ));
            encode_order(&mut out, &e.order);
            encode_ftree(&mut out, &e.ftree_nodes);
            encode_graph(&mut out, "base-graph", &e.base_record);
            encode_graph(&mut out, "eval-graph", &e.eval_record);
        }
        if let Some(m) = &self.mcts {
            out.push_str(&format!("mcts {} {:016x}\n", m.nodes.len(), m.rng_state));
            for n in &m.nodes {
                let parent = match n.parent {
                    Some(p) => p.to_string(),
                    None => "-".to_string(),
                };
                out.push_str(&format!(
                    "m {parent} {} {} {} {}\n",
                    n.cand_index,
                    n.visits,
                    f64_hex(n.reward_sum),
                    if n.expanded { 1 } else { 0 }
                ));
            }
        }
        encode_graph(&mut out, "base-graph", &self.base_record);
        encode_graph(&mut out, "eval-graph", &self.eval_record);
        out.push_str(CKPT_FOOTER);
        out.push('\n');
        out
    }

    /// Parses a checkpoint from its text form.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] on any structural defect:
    /// version mismatch, truncation, malformed lines, bad counts.
    pub fn decode(text: &str) -> Result<SearchCheckpoint, CheckpointError> {
        let lines: Vec<&str> = text.lines().collect();
        let mut ln = 0usize; // index into `lines`; 1-based in errors

        let header = next_line(&lines, &mut ln)?;
        let v1 = header.trim() == CKPT_HEADER_V1;
        let v2 = header.trim() == CKPT_HEADER_V2;
        let v3 = header.trim() == CKPT_HEADER_V3;
        if !v1 && !v2 && !v3 && header.trim() != CKPT_HEADER {
            return Err(CheckpointError::Parse {
                line: 1,
                msg: format!("bad header '{header}' (expected '{CKPT_HEADER}')"),
            });
        }
        // v1/v2: no next_seq/frontier sections at all.
        let legacy = v1 || v2;
        // v1/v2/v3: no driver line, no MCTS section — greedy by
        // construction.
        let pre_v4 = legacy || v3;

        let driver = if pre_v4 {
            DriverKind::Greedy
        } else {
            let t = expect_kv(next_line(&lines, &mut ln)?, ln, "driver", 1)?;
            DriverKind::parse(&t[0]).ok_or_else(|| CheckpointError::Parse {
                line: ln,
                msg: format!("unknown driver '{}'", t[0]),
            })?
        };

        let t = expect_kv(next_line(&lines, &mut ln)?, ln, "rng", 1)?;
        let rng_seed = parse_hex_u64(&t[0], ln, "rng seed")?;

        let t = expect_kv(next_line(&lines, &mut ln)?, ln, "seed_cost", 2)?;
        let seed_cost = (parse_u64(&t[0], ln, "seed peak")?, parse_f64_hex(&t[1], ln, "seed latency")?);

        let t = expect_kv(next_line(&lines, &mut ln)?, ln, "best_cost", 2)?;
        let best_cost = (parse_u64(&t[0], ln, "best peak")?, parse_f64_hex(&t[1], ln, "best latency")?);

        let t = expect_kv(next_line(&lines, &mut ln)?, ln, "counters", if v1 { 8 } else { 10 })?;
        let counters = CheckpointCounters {
            expanded: parse_u64(&t[0], ln, "expanded")?,
            evaluated: parse_u64(&t[1], ln, "evaluated")?,
            candidates: parse_u64(&t[2], ln, "candidates")?,
            filtered: parse_u64(&t[3], ln, "filtered")?,
            panicked: parse_u64(&t[4], ln, "panicked")?,
            cost_rejections: parse_u64(&t[5], ln, "cost_rejections")?,
            invariant_rejections: parse_u64(&t[6], ln, "invariant_rejections")?,
            quarantined_candidates: parse_u64(&t[7], ln, "quarantined_candidates")?,
            checkpoints_written: if v1 { 0 } else { parse_u64(&t[8], ln, "checkpoints_written")? },
            checkpoint_failures: if v1 { 0 } else { parse_u64(&t[9], ln, "checkpoint_failures")? },
        };

        let t = expect_kv(next_line(&lines, &mut ln)?, ln, "pareto", 1)?;
        let np = parse_usize(&t[0], ln, "pareto count")?;
        let mut pareto = Vec::with_capacity(np);
        for _ in 0..np {
            let t = expect_kv(next_line(&lines, &mut ln)?, ln, "p", 2)?;
            pareto.push((parse_u64(&t[0], ln, "pareto peak")?, parse_f64_hex(&t[1], ln, "pareto latency")?));
        }

        let t = expect_kv(next_line(&lines, &mut ln)?, ln, "seen", 1)?;
        let ns = parse_usize(&t[0], ln, "seen count")?;
        let mut seen = Vec::with_capacity(ns);
        while seen.len() < ns {
            let line = next_line(&lines, &mut ln)?;
            let mut toks = line.split_whitespace();
            if toks.next() != Some("s") {
                return Err(CheckpointError::Parse {
                    line: ln,
                    msg: format!("expected 's' hash line, got '{line}'"),
                });
            }
            for tok in toks {
                seen.push(parse_hex_u64(tok, ln, "seen hash")?);
            }
            if seen.len() > ns {
                return Err(CheckpointError::Parse {
                    line: ln,
                    msg: format!("more seen hashes than declared ({ns})"),
                });
            }
        }

        let t = expect_kv(next_line(&lines, &mut ln)?, ln, "quarantine", 1)?;
        let nq = parse_usize(&t[0], ln, "quarantine count")?;
        let mut quarantine = Vec::with_capacity(nq);
        for _ in 0..nq {
            let t = expect_kv(next_line(&lines, &mut ln)?, ln, "q", 2)?;
            let fam = parse_u64(&t[0], ln, "family")?;
            if fam > u8::MAX as u64 {
                return Err(CheckpointError::Parse { line: ln, msg: format!("family {fam} out of range") });
            }
            let strikes = parse_u64(&t[1], ln, "strikes")?;
            quarantine.push((fam as u8, strikes.min(u32::MAX as u64) as u32));
        }

        let best_order = decode_order(&lines, &mut ln)?;
        let ftree_nodes = decode_ftree(&lines, &mut ln)?;

        let (next_seq, frontier, mcts) = if legacy {
            (0, Vec::new(), None)
        } else {
            let t = expect_kv(next_line(&lines, &mut ln)?, ln, "next_seq", 1)?;
            let next_seq = parse_u64(&t[0], ln, "next_seq")?;
            let t = expect_kv(next_line(&lines, &mut ln)?, ln, "frontier", 1)?;
            let nfr = parse_usize(&t[0], ln, "frontier count")?;
            let mut frontier = Vec::with_capacity(nfr);
            for _ in 0..nfr {
                let t = expect_kv(next_line(&lines, &mut ln)?, ln, "entry", 2)?;
                let seq = parse_u64(&t[0], ln, "entry seq")?;
                let tree_stale = match t[1].as_str() {
                    "0" => false,
                    "1" => true,
                    other => {
                        return Err(CheckpointError::Parse {
                            line: ln,
                            msg: format!("bad entry staleness flag '{other}'"),
                        })
                    }
                };
                let order = decode_order(&lines, &mut ln)?;
                let ftree_nodes = decode_ftree(&lines, &mut ln)?;
                let base_record = decode_graph("base-graph", &lines, &mut ln)?;
                let eval_record = decode_graph("eval-graph", &lines, &mut ln)?;
                frontier.push(FrontierEntry {
                    seq,
                    tree_stale,
                    order,
                    ftree_nodes,
                    base_record,
                    eval_record,
                });
            }
            // v4: an optional MCTS tree section follows the frontier.
            let mcts = if !pre_v4 && lines.get(ln).is_some_and(|l| l.starts_with("mcts ")) {
                let t = expect_kv(next_line(&lines, &mut ln)?, ln, "mcts", 2)?;
                let nn = parse_usize(&t[0], ln, "mcts node count")?;
                let rng_state = parse_hex_u64(&t[1], ln, "mcts rng state")?;
                let mut nodes = Vec::with_capacity(nn);
                for _ in 0..nn {
                    let t = expect_kv(next_line(&lines, &mut ln)?, ln, "m", 5)?;
                    let parent = if t[0] == "-" {
                        None
                    } else {
                        Some(parse_u64(&t[0], ln, "mcts parent")?)
                    };
                    let cand_index = parse_u64(&t[1], ln, "mcts cand_index")?;
                    let visits = parse_u64(&t[2], ln, "mcts visits")?;
                    let reward_sum = parse_f64_hex(&t[3], ln, "mcts reward")?;
                    let expanded = match t[4].as_str() {
                        "0" => false,
                        "1" => true,
                        other => {
                            return Err(CheckpointError::Parse {
                                line: ln,
                                msg: format!("bad mcts expanded flag '{other}'"),
                            })
                        }
                    };
                    nodes.push(MctsNodeMeta { parent, cand_index, visits, reward_sum, expanded });
                }
                Some(MctsCheckpoint { rng_state, nodes })
            } else {
                None
            };
            (next_seq, frontier, mcts)
        };

        let base_record = decode_graph("base-graph", &lines, &mut ln)?;
        let eval_record = decode_graph("eval-graph", &lines, &mut ln)?;

        let footer = next_line(&lines, &mut ln)?;
        if footer.trim() != CKPT_FOOTER {
            return Err(CheckpointError::Parse {
                line: ln,
                msg: format!("expected footer '{CKPT_FOOTER}', got '{footer}'"),
            });
        }

        Ok(SearchCheckpoint {
            rng_seed,
            seed_cost,
            best_cost,
            counters,
            pareto,
            seen,
            quarantine,
            best_order,
            ftree_nodes,
            base_record,
            eval_record,
            next_seq,
            frontier,
            driver,
            mcts,
        })
    }

    /// Writes the checkpoint to `path` via a temp-file + rename so a
    /// crash mid-write never leaves a torn checkpoint behind.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn write_to(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.encode())
            .map_err(|e| CheckpointError::Io(format!("write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, path)
            .map_err(|e| CheckpointError::Io(format!("rename to {}: {e}", path.display())))
    }

    /// Reads and parses a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns a typed error for I/O failures or any structural defect.
    pub fn read_from(path: &Path) -> Result<SearchCheckpoint, CheckpointError> {
        let text = fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
        Self::decode(&text)
    }

    /// Rebuilds the incumbent [`MState`] from the stored parts: both
    /// graph records are restored and re-validated, the stored schedule
    /// is checked against the eval graph (topological order, exactly-
    /// once coverage), and the schedule is re-simulated under `ctx` to
    /// reproduce the evaluation.
    ///
    /// # Errors
    ///
    /// Any corruption — dangling edges, a schedule that no longer
    /// topo-sorts the graph, defective re-simulated costs — surfaces
    /// as a typed [`CheckpointError`].
    pub fn restore_state(&self, ctx: &EvalContext) -> Result<MState, CheckpointError> {
        restore_parts(&self.best_order, &self.ftree_nodes, &self.base_record, &self.eval_record, ctx)
    }

    /// Rebuilds the checkpointed frontier (v3): every queue entry is
    /// restored through the same validation/re-simulation pipeline as
    /// the incumbent, with its checkpointed staleness flag and sequence
    /// number reinstated. Returns `(seq, state)` pairs in stored
    /// (sequence) order; empty for legacy / frontier-free checkpoints.
    ///
    /// # Errors
    ///
    /// Any corrupt entry fails the whole restore with a typed
    /// [`CheckpointError`] — a partially restored frontier would
    /// silently diverge from the checkpointed trajectory.
    pub fn restore_frontier(
        &self,
        ctx: &EvalContext,
    ) -> Result<Vec<(u64, MState)>, CheckpointError> {
        let mut out = Vec::with_capacity(self.frontier.len());
        for e in &self.frontier {
            let mut state =
                restore_parts(&e.order, &e.ftree_nodes, &e.base_record, &e.eval_record, ctx)?;
            // `MState::resume` conservatively marks the tree stale; a
            // frontier entry must come back with the exact flag it was
            // queued with, or the resumed expansion would re-analyze
            // where the original didn't (diverging the trajectory).
            state.tree_stale = e.tree_stale;
            out.push((e.seq, state));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::EvalContext;
    use magis_graph::builder::GraphBuilder;
    use magis_graph::tensor::DType;

    fn small_state() -> MState {
        let mut b = GraphBuilder::new(DType::F32);
        let mut cur = b.input([128, 64], "x");
        for i in 0..4 {
            let w = b.weight([64, 64], &format!("w{i}"));
            let h = b.matmul(cur, w);
            cur = b.relu(h);
        }
        MState::initial(b.finish(), &EvalContext::default())
    }

    fn checkpoint_of(s: &MState) -> SearchCheckpoint {
        let (best_order, ftree_nodes, base_record, eval_record) =
            SearchCheckpoint::snapshot_state(s);
        SearchCheckpoint {
            rng_seed: 0x5eed,
            seed_cost: s.cost(),
            best_cost: s.cost(),
            counters: CheckpointCounters { expanded: 3, evaluated: 17, ..Default::default() },
            pareto: vec![s.cost(), (s.cost().0 / 2, s.cost().1 * 2.0)],
            seen: vec![1, 2, 0xdeadbeef],
            quarantine: vec![(4, 2)],
            best_order,
            ftree_nodes,
            base_record,
            eval_record,
            next_seq: 0,
            frontier: Vec::new(),
            driver: DriverKind::Greedy,
            mcts: None,
        }
    }

    fn frontier_entry_of(s: &MState, seq: u64, tree_stale: bool) -> FrontierEntry {
        let (order, ftree_nodes, base_record, eval_record) = SearchCheckpoint::snapshot_state(s);
        FrontierEntry { seq, tree_stale, order, ftree_nodes, base_record, eval_record }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let s = small_state();
        let c = checkpoint_of(&s);
        let text = c.encode();
        let d = SearchCheckpoint::decode(&text).unwrap();
        assert_eq!(d.rng_seed, c.rng_seed);
        assert_eq!(d.seed_cost.0, c.seed_cost.0);
        assert_eq!(d.seed_cost.1.to_bits(), c.seed_cost.1.to_bits());
        assert_eq!(d.best_cost.1.to_bits(), c.best_cost.1.to_bits());
        assert_eq!(d.counters, c.counters);
        assert_eq!(d.pareto.len(), c.pareto.len());
        assert_eq!(d.seen, c.seen);
        assert_eq!(d.quarantine, c.quarantine);
        assert_eq!(d.best_order, c.best_order);
        assert_eq!(d.base_record, c.base_record);
        assert_eq!(d.eval_record, c.eval_record);
        // Re-encoding the decoded checkpoint is byte-identical.
        assert_eq!(d.encode(), text);
    }

    #[test]
    fn frontier_round_trips_and_restores() {
        let ctx = EvalContext::default();
        let s = small_state();
        let mut c = checkpoint_of(&s);
        c.next_seq = 7;
        c.frontier = vec![frontier_entry_of(&s, 2, true), frontier_entry_of(&s, 5, false)];
        let text = c.encode();
        let d = SearchCheckpoint::decode(&text).unwrap();
        assert_eq!(d.next_seq, 7);
        assert_eq!(d.frontier.len(), 2);
        assert_eq!(d.frontier[0].seq, 2);
        assert!(d.frontier[0].tree_stale);
        assert_eq!(d.frontier[1].seq, 5);
        assert!(!d.frontier[1].tree_stale);
        assert_eq!(d.encode(), text, "frontier re-encode is byte-identical");
        let restored = d.restore_frontier(&ctx).unwrap();
        assert_eq!(restored.len(), 2);
        let (seq, st) = &restored[0];
        assert_eq!(*seq, 2);
        assert!(st.tree_stale);
        assert_eq!(st.eval.latency.to_bits(), s.eval.latency.to_bits());
        assert_eq!(st.eval.peak_bytes, s.eval.peak_bytes);
        // The staleness flag is reinstated verbatim, not forced on.
        assert!(!restored[1].1.tree_stale);
        // A corrupt frontier entry fails the whole restore.
        let mut bad = d.clone();
        bad.frontier[1].order[0] = 9999;
        assert!(bad.restore_frontier(&ctx).is_err());
    }

    #[test]
    fn restore_reproduces_evaluation() {
        let ctx = EvalContext::default();
        let s = small_state();
        let c = checkpoint_of(&s);
        let r = SearchCheckpoint::decode(&c.encode()).unwrap();
        let restored = r.restore_state(&ctx).unwrap();
        assert_eq!(restored.eval.latency.to_bits(), s.eval.latency.to_bits());
        assert_eq!(restored.eval.peak_bytes, s.eval.peak_bytes);
        assert_eq!(restored.eval.order, s.eval.order);
        assert!(restored.tree_stale, "resume must re-analyze the F-Tree");
        restored.base.validate().unwrap();
        restored.eval.graph.validate().unwrap();
    }

    #[test]
    fn v1_checkpoints_still_decode() {
        let s = small_state();
        let mut c = checkpoint_of(&s);
        c.counters.checkpoints_written = 5;
        c.counters.checkpoint_failures = 1;
        // Rewrite the v4 text down to the v1 format: old header, no
        // driver line, 8-field counters line, no next_seq/frontier
        // sections.
        let v4 = c.encode();
        let v1_counters = format!(
            "counters {} {} {} {} {} {} {} {}",
            c.counters.expanded,
            c.counters.evaluated,
            c.counters.candidates,
            c.counters.filtered,
            c.counters.panicked,
            c.counters.cost_rejections,
            c.counters.invariant_rejections,
            c.counters.quarantined_candidates
        );
        let v1_text: String = v4
            .lines()
            .filter(|l| *l != "next_seq 0" && *l != "frontier 0" && *l != "driver greedy")
            .map(|l| {
                if l == "magis-checkpoint v4" {
                    "magis-checkpoint v1".to_string()
                } else if l.starts_with("counters ") {
                    v1_counters.clone()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        let d = SearchCheckpoint::decode(&v1_text).unwrap();
        // Shared counters survive; the v2-only ones resume from zero.
        assert_eq!(d.counters.evaluated, c.counters.evaluated);
        assert_eq!(d.counters.checkpoints_written, 0);
        assert_eq!(d.counters.checkpoint_failures, 0);
        assert_eq!(d.seen, c.seen);
        assert!(d.frontier.is_empty(), "legacy checkpoints resume frontier-free");
        assert_eq!(d.driver, DriverKind::Greedy, "legacy checkpoints decode as greedy");
        assert!(d.mcts.is_none());
        // And a v1 checkpoint re-encodes as v4.
        assert!(d.encode().starts_with("magis-checkpoint v4\n"));
    }

    #[test]
    fn v2_checkpoints_still_decode() {
        let s = small_state();
        let c = checkpoint_of(&s);
        // v2 is v4 minus the driver line and next_seq/frontier
        // sections, under the old header.
        let v2_text: String = c
            .encode()
            .lines()
            .filter(|l| *l != "next_seq 0" && *l != "frontier 0" && *l != "driver greedy")
            .map(|l| {
                if l == "magis-checkpoint v4" {
                    "magis-checkpoint v2".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        let d = SearchCheckpoint::decode(&v2_text).unwrap();
        assert_eq!(d.counters, c.counters);
        assert_eq!(d.seen, c.seen);
        assert_eq!(d.best_order, c.best_order);
        assert!(d.frontier.is_empty());
        assert_eq!(d.next_seq, 0);
        assert!(d.encode().starts_with("magis-checkpoint v4\n"));
    }

    #[test]
    fn v3_checkpoints_still_decode() {
        let ctx = EvalContext::default();
        let s = small_state();
        let mut c = checkpoint_of(&s);
        c.next_seq = 3;
        c.frontier = vec![frontier_entry_of(&s, 1, false)];
        // v3 is v4 minus the driver line, under the old header; the
        // next_seq/frontier sections are present.
        let v3_text: String = c
            .encode()
            .lines()
            .filter(|l| *l != "driver greedy")
            .map(|l| {
                if l == "magis-checkpoint v4" {
                    "magis-checkpoint v3".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        let d = SearchCheckpoint::decode(&v3_text).unwrap();
        assert_eq!(d.driver, DriverKind::Greedy, "v3 checkpoints decode as greedy");
        assert!(d.mcts.is_none());
        assert_eq!(d.next_seq, 3);
        assert_eq!(d.frontier.len(), 1, "v3 frontiers still restore exactly");
        assert_eq!(d.restore_frontier(&ctx).unwrap().len(), 1);
        assert!(d.encode().starts_with("magis-checkpoint v4\n"));
    }

    #[test]
    fn mcts_checkpoints_round_trip() {
        let s = small_state();
        let mut c = checkpoint_of(&s);
        c.driver = DriverKind::Mcts;
        c.next_seq = 2;
        c.frontier = vec![frontier_entry_of(&s, 0, false), frontier_entry_of(&s, 1, false)];
        c.mcts = Some(MctsCheckpoint {
            rng_state: 0xdead_beef_0bad_cafe,
            nodes: vec![
                MctsNodeMeta {
                    parent: None,
                    cand_index: 0,
                    visits: 7,
                    reward_sum: 1.25,
                    expanded: true,
                },
                MctsNodeMeta {
                    parent: Some(0),
                    cand_index: 3,
                    visits: 2,
                    reward_sum: 0.5,
                    expanded: false,
                },
            ],
        });
        let text = c.encode();
        let d = SearchCheckpoint::decode(&text).unwrap();
        assert_eq!(d.driver, DriverKind::Mcts);
        assert_eq!(d.mcts, c.mcts);
        assert_eq!(d.encode(), text, "MCTS re-encode is byte-identical");
        // A corrupt driver tag is rejected.
        assert!(SearchCheckpoint::decode(&text.replacen("driver mcts", "driver dfs", 1)).is_err());
        // A corrupt tree line is rejected.
        assert!(SearchCheckpoint::decode(&text.replacen("m - 0 7", "m - x 7", 1)).is_err());
    }

    #[test]
    fn decode_rejects_corruption() {
        let s = small_state();
        let text = checkpoint_of(&s).encode();
        // Bad header (no known version).
        assert!(SearchCheckpoint::decode(&text.replacen("v4", "v9", 1)).is_err());
        // Truncation (drop the footer and graph tail).
        let cut = &text[..text.len() / 2];
        assert!(SearchCheckpoint::decode(cut).is_err());
        // Corrupt a counters field.
        let bad = text.replacen("counters 3", "counters x", 1);
        assert!(SearchCheckpoint::decode(&bad).is_err());
        // A schedule index out of range is caught at restore.
        let mut c = checkpoint_of(&s);
        c.best_order[0] = 9999;
        let err = SearchCheckpoint::decode(&c.encode()).unwrap().restore_state(&EvalContext::default());
        assert!(err.is_err());
        // A duplicated schedule entry is caught at restore.
        let mut c = checkpoint_of(&s);
        c.best_order[0] = c.best_order[1];
        assert!(SearchCheckpoint::decode(&c.encode())
            .unwrap()
            .restore_state(&EvalContext::default())
            .is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let s = small_state();
        let c = checkpoint_of(&s);
        let dir = std::env::temp_dir().join("magis-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.ckpt");
        c.write_to(&path).unwrap();
        let r = SearchCheckpoint::read_from(&path).unwrap();
        assert_eq!(r.encode(), c.encode());
        std::fs::remove_file(&path).ok();
    }
}
