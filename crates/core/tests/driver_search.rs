//! Driver-layer determinism and regression tests.
//!
//! Three contracts from DESIGN.md's "Search strategies" section are
//! enforced here, on real bench workloads rather than toy graphs:
//!
//! 1. the `SearchDriver` refactor left `GreedyDriver` bit-identical to
//!    the pre-refactor monolithic search loop (incumbent peak/latency
//!    and the headline counters pinned on four bench models),
//! 2. `MctsDriver` is thread-count independent (bit-identical
//!    trajectories under `threads = 1` and `threads = 4`),
//! 3. a killed `MctsDriver` search resumed from a frontier-bearing
//!    checkpoint replays the identical trajectory (same incumbent, bit
//!    for bit, as the uninterrupted run).

use magis_core::checkpoint::SearchCheckpoint;
use magis_core::driver::DriverKind;
use magis_core::optimizer::{
    optimize, resume, CheckpointPolicy, Objective, OptimizerConfig, StopReason,
};
use magis_core::state::{EvalContext, MState};
use magis_core::SearchBudget;
use magis_models::Workload;
use std::time::Duration;

/// The shared harness config: minimize memory under a 10% latency
/// leash, deterministic stop via the eval cap (the wall budget is set
/// far beyond any plausible runtime so it never fires).
fn config(g: &magis_graph::graph::Graph, driver: DriverKind, threads: usize) -> OptimizerConfig {
    let init = MState::initial(g.clone(), &EvalContext::default());
    OptimizerConfig::new(Objective::MinMemory { lat_limit: init.eval.latency * 1.10 })
        .with_budget(Duration::from_secs(3600))
        .with_max_evals(120)
        .with_threads(threads)
        .with_driver(driver)
}

/// Pins `GreedyDriver` to the exact incumbents the pre-refactor
/// monolithic search loop produced on four bench models (captured at
/// the commit before the `SearchDriver` extraction, threads = 1,
/// `max_evals = 120`). Any drift in peak bytes, latency bits, or the
/// headline counters means the refactor changed search behavior.
#[test]
fn greedy_driver_matches_pre_refactor_incumbents() {
    // (workload, scale, peak_bytes, latency_bits, evaluated, expanded, filtered)
    let golden: [(Workload, f64, u64, u64, usize, usize, usize); 4] = [
        (Workload::UNet, 0.15, 214_392_868, 0x3f74c7d5196af2bd, 120, 3, 2),
        (Workload::BertBase, 0.1, 34_313_604, 0x3f590766c9f2fa6e, 120, 4, 3),
        (Workload::VitBase, 0.1, 10_828_164, 0x3f629e383f446990, 120, 5, 3),
        (Workload::ResNet50, 0.1, 18_622_340, 0x3f69d1531301bd74, 120, 3, 1),
    ];
    for (w, scale, peak, lat_bits, evaluated, expanded, filtered) in golden {
        let g = w.build(scale).graph;
        let res = optimize(g.clone(), &config(&g, DriverKind::Greedy, 1));
        assert_eq!(res.best.eval.peak_bytes, peak, "{w:?}: incumbent peak drifted");
        assert_eq!(
            res.best.eval.latency.to_bits(),
            lat_bits,
            "{w:?}: incumbent latency drifted ({})",
            res.best.eval.latency
        );
        assert_eq!(res.stats.evaluated, evaluated, "{w:?}: evaluated count drifted");
        assert_eq!(res.stats.expanded, expanded, "{w:?}: expanded count drifted");
        assert_eq!(res.stats.filtered, filtered, "{w:?}: filtered count drifted");
        assert_eq!(res.stats.stop_reason, StopReason::EvalCapReached, "{w:?}");
    }
}

/// MCTS must produce bit-identical trajectories whatever the worker
/// thread count: candidate batches are sorted before the fan-out,
/// outcomes merge in candidate order on the driver thread, rollout RNG
/// draws happen only on the driver thread.
#[test]
fn mcts_is_thread_count_independent() {
    for w in [Workload::BertBase, Workload::UNet] {
        let g = w.build(0.1).graph;
        let a = optimize(g.clone(), &config(&g, DriverKind::Mcts, 1));
        let b = optimize(g.clone(), &config(&g, DriverKind::Mcts, 4));
        assert_eq!(
            a.best.eval.peak_bytes, b.best.eval.peak_bytes,
            "{w:?}: MCTS incumbent peak depends on thread count"
        );
        assert_eq!(
            a.best.eval.latency.to_bits(),
            b.best.eval.latency.to_bits(),
            "{w:?}: MCTS incumbent latency depends on thread count"
        );
        assert_eq!(a.stats.evaluated, b.stats.evaluated, "{w:?}");
        assert_eq!(a.stats.expanded, b.stats.expanded, "{w:?}");
        assert_eq!(a.stats.filtered, b.stats.filtered, "{w:?}");
        // The whole incumbent trajectory matches, not just the end.
        assert_eq!(a.history.len(), b.history.len(), "{w:?}");
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.peak_bytes, y.peak_bytes, "{w:?}");
            assert_eq!(x.latency.to_bits(), y.latency.to_bits(), "{w:?}");
        }
        // And both runs improved on the seed at all (the search did work).
        let seed_peak = MState::initial(g, &EvalContext::default()).eval.peak_bytes;
        assert!(a.best.eval.peak_bytes <= seed_peak, "{w:?}: search regressed the seed");
    }
}

/// Kill/resume trajectory-exactness under `MctsDriver`: a search
/// stopped at a deterministic candidate-count boundary and resumed
/// from its frontier-bearing checkpoint must finish bit-identical to
/// an uninterrupted run — the v4 checkpoint restores the tree
/// (parents, visits, rewards, expansion flags) and the rollout RNG
/// stream exactly.
#[test]
fn mcts_kill_resume_is_trajectory_exact() {
    let g = Workload::BertBase.build(0.1).graph;
    let dir = std::env::temp_dir().join("magis-driver-mcts-resume");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt_path = dir.join("mcts.ckpt");

    // Uninterrupted reference: stop exactly at 90 evaluated candidates
    // (checked at the step boundary, so the trajectory is a pure
    // function of the limit).
    let full_cfg = config(&g, DriverKind::Mcts, 2)
        .with_max_evals(usize::MAX)
        .with_search_budget(SearchBudget::default().with_candidate_limit(90));
    let full = optimize(g.clone(), &full_cfg);

    // Killed run: same search, stopped at 40; the final checkpoint
    // carries the frontier + tree metadata.
    let killed_cfg = config(&g, DriverKind::Mcts, 2)
        .with_max_evals(usize::MAX)
        .with_search_budget(SearchBudget::default().with_candidate_limit(40))
        .with_checkpoint(CheckpointPolicy::new(&ckpt_path).with_every(10).with_frontier(true));
    let killed = optimize(g.clone(), &killed_cfg);
    assert!(killed.stats.evaluated >= 40, "killed run must reach its cap");
    assert!(killed.stats.evaluated < full.stats.evaluated);

    // Resume under the original 90-candidate limit; no further
    // checkpointing needed.
    let ckpt = SearchCheckpoint::read_from(&ckpt_path).unwrap();
    assert_eq!(ckpt.driver, DriverKind::Mcts, "checkpoint is driver-tagged");
    assert!(ckpt.mcts.is_some(), "MCTS frontier checkpoint carries the tree");
    let resume_cfg = config(&g, DriverKind::Greedy, 2) // config driver is ignored on resume
        .with_max_evals(usize::MAX)
        .with_search_budget(SearchBudget::default().with_candidate_limit(90));
    let resumed = resume(&ckpt, &resume_cfg).unwrap();

    assert_eq!(
        resumed.best.eval.peak_bytes, full.best.eval.peak_bytes,
        "resumed incumbent peak diverged from the uninterrupted run"
    );
    assert_eq!(
        resumed.best.eval.latency.to_bits(),
        full.best.eval.latency.to_bits(),
        "resumed incumbent latency diverged from the uninterrupted run"
    );
    assert_eq!(resumed.stats.evaluated, full.stats.evaluated);
    assert_eq!(resumed.stats.expanded, full.stats.expanded);

    std::fs::remove_file(&ckpt_path).ok();
}
