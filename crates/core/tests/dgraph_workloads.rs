//! D-Graph structure across the real workloads: every Table 2 network
//! must expose a batch-dimension component spanning a large fraction
//! of its nodes (the precondition for the paper's headline fissions),
//! and the F-Tree must find candidates on each.

use magis_graph::GraphView;
use magis_core::dgraph::DimGraph;
use magis_core::state::{EvalContext, MState};
use magis_models::Workload;
use std::collections::BTreeSet;

fn batch_component_fraction(w: Workload, scale: f64) -> f64 {
    let tg = w.build(scale);
    let g = &tg.graph;
    let dg = DimGraph::build(g);
    // The batch input's dim-1 component.
    let x = g
        .node_ids()
        .find(|&v| {
            g.node(v).op.is_input()
                && !g.node(v).op.is_weight_input()
                && g.node(v).meta.shape.rank() >= 2
        })
        .expect("batch input");
    let comps = dg.components();
    let batch = comps.iter().find(|c| c.contains(&(x, 1)));
    let nodes: BTreeSet<_> = match batch {
        Some(c) => c.iter().map(|&(v, _)| v).collect(),
        None => BTreeSet::new(),
    };
    nodes.len() as f64 / g.len() as f64
}

#[test]
fn batch_dimension_spans_transformers() {
    for w in [Workload::BertBase, Workload::GptNeo13B] {
        let frac = batch_component_fraction(w, 0.15);
        assert!(frac > 0.3, "{}: batch component spans {frac:.2}", w.label());
    }
}

#[test]
fn batch_dimension_spans_cnns() {
    for w in [Workload::UNet, Workload::ResNet50] {
        let frac = batch_component_fraction(w, 0.15);
        assert!(frac > 0.3, "{}: batch component spans {frac:.2}", w.label());
    }
}

#[test]
fn ftree_finds_candidates_on_every_workload() {
    for w in Workload::all() {
        let tg = w.build(0.12);
        let ctx = EvalContext::default();
        let mut s = MState::initial(tg.graph, &ctx);
        s.analyze(4);
        assert!(
            !s.ftree.is_empty(),
            "{}: F-Tree must offer fission candidates",
            w.label()
        );
        // Every candidate must be probe-valid at n = 2.
        for n in s.ftree.nodes() {
            let mut probe = n.spec.clone();
            probe.parts = 2;
            probe
                .validate(&s.base)
                .unwrap_or_else(|e| panic!("{}: invalid candidate: {e}", w.label()));
        }
    }
}
