//! TVM-like and Torch-Inductor-like baselines (§7.1 baselines (5),
//! (6)): DNN compilers that perform "basic memory saving to reclaim
//! future-unused tensors" — no rematerialization or swapping — but
//! fuse elementwise chains, so at memory ratio 1.0 they are *faster*
//! than the PyTorch anchor (the below-axis points of Fig. 11).
//!
//! Fusion model: an elementwise operator whose (single-use) producer
//! is a compute op melts into that producer's epilogue — its kernel
//! launch and its input re-read disappear; only the fused output write
//! remains. This is the dominant effect of Relay/Triton fusion on the
//! modelled workloads.

use magis_graph::GraphView;
use crate::BaselineResult;
use magis_graph::graph::{Graph, NodeId};
use magis_graph::op::OpKind;
use magis_sim::{memory_profile, NodeCost};

/// Whether `v` can melt into its producer (elementwise epilogue).
fn fusable(g: &Graph, v: NodeId) -> bool {
    let n = g.node(v);
    let elementwise = matches!(
        n.op,
        OpKind::Unary(_) | OpKind::UnaryGrad(_) | OpKind::Binary(_)
    );
    if !elementwise {
        return false;
    }
    // Epilogue fusion: the producer's result is consumed from registers;
    // other users (e.g. the backward pass) read the materialized buffer,
    // so memory accounting is unchanged.
    let p = n.inputs()[0];
    let pn = g.node(p);
    !pn.op.is_input() && !pn.op.is_swap()
}

/// Latency of `g` under program order with elementwise fusion applied:
/// fused ops lose their launch overhead and input-read traffic.
pub fn fused_latency<C: NodeCost + ?Sized>(
    g: &Graph,
    order: &[NodeId],
    cm: &C,
    fusion_strength: f64,
) -> f64 {
    let mut total = 0.0;
    for &v in order {
        let base = cm.node_latency(g, v);
        if fusable(g, v) {
            // Keep only the output-write fraction of the kernel.
            let n = g.node(v);
            let write = n.size_bytes() as f64 / cm.device().mem_bandwidth
                * n.cost_repeat as f64;
            total += write + (1.0 - fusion_strength) * base;
        } else {
            total += base;
        }
    }
    total
}

fn run_compiler<C: NodeCost + ?Sized>(
    g: &Graph,
    budget: Option<u64>,
    cm: &C,
    fusion_strength: f64,
) -> BaselineResult {
    let order = crate::pytorch::program_order(g);
    let peak = memory_profile(g, &order).peak_bytes;
    let latency = fused_latency(g, &order, cm, fusion_strength);
    let feasible = budget.is_none_or(|b| peak <= b);
    BaselineResult { peak_bytes: peak, latency, feasible }
}

/// TVM/Relay-like: basic memory saving, moderate fusion.
pub fn run_tvm<C: NodeCost + ?Sized>(g: &Graph, budget: Option<u64>, cm: &C) -> BaselineResult {
    run_compiler(g, budget, cm, 0.8)
}

/// Torch-Inductor-like: basic memory saving, aggressive Triton fusion.
pub fn run_ti<C: NodeCost + ?Sized>(g: &Graph, budget: Option<u64>, cm: &C) -> BaselineResult {
    run_compiler(g, budget, cm, 0.95)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_models::mlp::{mlp, MlpConfig};
    use magis_sim::CostModel;

    #[test]
    fn compilers_faster_than_anchor_same_memory() {
        let tg = mlp(&MlpConfig::default());
        let cm = CostModel::default();
        let anchor = crate::pytorch::run(&tg.graph, &cm);
        let tvm = run_tvm(&tg.graph, None, &cm);
        let ti = run_ti(&tg.graph, None, &cm);
        assert_eq!(tvm.peak_bytes, anchor.peak_bytes, "basic saving only");
        assert!(tvm.latency < anchor.latency, "fusion speeds up");
        assert!(ti.latency <= tvm.latency, "TI fuses harder");
    }

    #[test]
    fn tight_budget_infeasible() {
        let tg = mlp(&MlpConfig::default());
        let cm = CostModel::default();
        let r = run_tvm(&tg.graph, Some(1), &cm);
        assert!(!r.feasible, "compilers cannot reduce memory");
    }
}
