//! The unoptimized PyTorch-like anchor (§7.1 baseline (1)): graphs are
//! executed in deterministic program order with "basic memory saving"
//! — future-unused tensors freed immediately — which is exactly what
//! the memory profiler models.

use crate::BaselineResult;
use magis_graph::algo::topo_order;
use magis_graph::graph::{Graph, NodeId};
use magis_sim::{evaluate, NodeCost};

/// The program order: deterministic Kahn order (builder creation order
/// wherever dependencies allow — what an eager framework executes).
pub fn program_order(g: &Graph) -> Vec<NodeId> {
    topo_order(g)
}

/// Runs the anchor: no transformations, no re-ordering.
pub fn run<C: NodeCost + ?Sized>(g: &Graph, cm: &C) -> BaselineResult {
    let order = program_order(g);
    let ev = evaluate(g, &order, cm);
    BaselineResult { peak_bytes: ev.peak_bytes, latency: ev.latency, feasible: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_models::mlp::{mlp, MlpConfig};
    use magis_sim::CostModel;

    #[test]
    fn anchor_is_deterministic() {
        let tg = mlp(&MlpConfig::default());
        let cm = CostModel::default();
        let a = run(&tg.graph, &cm);
        let b = run(&tg.graph, &cm);
        assert_eq!(a, b);
        assert!(a.peak_bytes > 0 && a.latency > 0.0);
    }
}
