//! Micro-batching pre-pass (Fig. 12 of the paper): "dividing the whole
//! graph along the batch-dimension to simulate a simple F-Trans. The
//! split sub-graph is fed to POFO, and execution latency is multiplied
//! by the sub-graph count."
//!
//! As in the paper's setup, the model is rebuilt at `batch / factor`;
//! gradient accumulation across micro-batches keeps one weight-grad
//! buffer resident for the whole step, which is added to the peak.

use magis_graph::GraphView;
use crate::{pofo, BaselineResult};
use magis_graph::grad::TrainingGraph;
use magis_sim::NodeCost;

/// Runs POFO on a micro-batched rebuild of a workload.
///
/// `build(batch)` must construct the training graph at the given batch
/// size; `full_batch` is the original size and `factor` the number of
/// micro-batches (`full_batch % factor == 0` expected — the builder
/// receives `full_batch / factor`).
pub fn run_with_pofo<C: NodeCost + ?Sized>(
    build: impl Fn(u64) -> TrainingGraph,
    full_batch: u64,
    factor: u64,
    budget: Option<u64>,
    cm: &C,
) -> BaselineResult {
    assert!(factor >= 1 && full_batch >= factor, "factor must divide the batch sensibly");
    let micro = build((full_batch / factor).max(1));
    // Gradient accumulation buffer: one gradient per weight, alive for
    // the whole optimizer step.
    let accum_bytes: u64 = micro
        .weight_grads
        .iter()
        .map(|&(_, dw)| micro.graph.node(dw).size_bytes())
        .sum();
    let inner_budget = budget.map(|b| b.saturating_sub(accum_bytes));
    let r = pofo::run(&micro.graph, inner_budget, cm);
    BaselineResult {
        peak_bytes: r.peak_bytes + accum_bytes,
        latency: r.latency * factor as f64,
        feasible: r.feasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_models::mlp::{mlp, MlpConfig};
    use magis_sim::CostModel;

    fn build(batch: u64) -> TrainingGraph {
        // Activation-dominated regime (micro-batching cannot shrink
        // weights or their gradient-accumulation buffer).
        mlp(&MlpConfig { batch, ..MlpConfig::default() })
    }

    #[test]
    fn microbatching_cuts_memory_multiplies_latency() {
        let cm = CostModel::default();
        let full = crate::pytorch::run(&build(1024).graph, &cm);
        let m4 = run_with_pofo(build, 1024, 4, None, &cm);
        assert!(m4.peak_bytes < full.peak_bytes, "{} < {}", m4.peak_bytes, full.peak_bytes);
        // Four smaller passes are slower than one big pass (utilization).
        assert!(m4.latency > full.latency);
    }

    #[test]
    fn deeper_factors_reach_tighter_budgets() {
        let cm = CostModel::default();
        let full = crate::pytorch::run(&build(256).graph, &cm);
        let budget = (full.peak_bytes as f64 * 0.35) as u64;
        let m2 = run_with_pofo(build, 256, 2, Some(budget), &cm);
        let m8 = run_with_pofo(build, 256, 8, Some(budget), &cm);
        assert!(
            m8.feasible || !m2.feasible,
            "larger factor is at least as feasible: m2 {m2:?} m8 {m8:?}"
        );
    }
}
