//! # magis-baselines
//!
//! Reimplementations of the paper's comparison systems (§7.1) against
//! the shared `magis-sim` measurement harness:
//!
//! * [`pytorch`] — the unoptimized anchor: program-order execution
//!   with dead tensors freed immediately,
//! * [`compilers`] — TVM-like and Torch-Inductor-like: basic memory
//!   saving plus elementwise-fusion latency bonus,
//! * [`xla`] — XLA-like greedy rematerialization,
//! * [`dtr`] — DTR-like runtime eviction with the
//!   `cost/(size·staleness)` heuristic,
//! * [`pofo`] — POFO-like combined rematerialization + offloading on a
//!   linearized chain,
//! * [`microbatch`] — the micro-batching pre-pass of Fig. 12.
//!
//! Each baseline answers the same question as MAGIS: *given a memory
//! budget, what latency can you achieve* — so Fig. 9/10/11 comparisons
//! come from one interface.

pub mod compilers;
pub mod dtr;
pub mod microbatch;
pub mod pofo;
pub mod pytorch;
pub mod xla;

use magis_graph::graph::Graph;
use magis_sim::NodeCost;

/// Outcome of one baseline run at one memory budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineResult {
    /// Achieved peak memory in bytes.
    pub peak_bytes: u64,
    /// Achieved end-to-end latency in seconds.
    pub latency: f64,
    /// Whether the budget was met (FAILURE markers in Fig. 10 are
    /// `feasible == false`).
    pub feasible: bool,
}

/// The baselines compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Unoptimized PyTorch anchor.
    PyTorch,
    /// POFO (Beaumont et al., NeurIPS'21): remat + offload DP on chains.
    Pofo,
    /// DTR (Kirisame et al., ICLR'21): runtime heuristic eviction.
    Dtr,
    /// XLA: greedy rematerialization.
    Xla,
    /// TVM / Relay: basic memory saving.
    Tvm,
    /// Torch-Inductor: basic memory saving + Triton fusion.
    TorchInductor,
}

impl BaselineKind {
    /// All compared baselines in the paper's legend order.
    pub fn all() -> [BaselineKind; 5] {
        [
            BaselineKind::Pofo,
            BaselineKind::Dtr,
            BaselineKind::Xla,
            BaselineKind::Tvm,
            BaselineKind::TorchInductor,
        ]
    }

    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::PyTorch => "PyTorch",
            BaselineKind::Pofo => "POFO",
            BaselineKind::Dtr => "DTR",
            BaselineKind::Xla => "XLA",
            BaselineKind::Tvm => "TVM",
            BaselineKind::TorchInductor => "TI",
        }
    }

    /// Runs the baseline on `g` under an optional memory budget.
    ///
    /// Generic over [`NodeCost`], so baselines run under any registered
    /// backend (or a [`magis_sim::PerfCache`]) — not just the concrete
    /// default cost model.
    pub fn run<C: NodeCost + ?Sized>(
        &self,
        g: &Graph,
        budget: Option<u64>,
        cm: &C,
    ) -> BaselineResult {
        match self {
            BaselineKind::PyTorch => pytorch::run(g, cm),
            BaselineKind::Pofo => pofo::run(g, budget, cm),
            BaselineKind::Dtr => dtr::run(g, budget, cm),
            BaselineKind::Xla => xla::run(g, budget, cm),
            BaselineKind::Tvm => compilers::run_tvm(g, budget, cm),
            BaselineKind::TorchInductor => compilers::run_ti(g, budget, cm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_models::mlp::{mlp, MlpConfig};
    use magis_sim::CostModel;

    #[test]
    fn all_baselines_run_unconstrained() {
        let tg = mlp(&MlpConfig::default());
        let cm = CostModel::default();
        let anchor = BaselineKind::PyTorch.run(&tg.graph, None, &cm);
        assert!(anchor.feasible && anchor.peak_bytes > 0);
        for b in BaselineKind::all() {
            let r = b.run(&tg.graph, None, &cm);
            assert!(r.feasible, "{} unconstrained must be feasible", b.label());
            assert!(r.latency > 0.0);
        }
    }
}
