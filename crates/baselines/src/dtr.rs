//! DTR-like baseline (§7.1 baseline (3)): Dynamic Tensor
//! Rematerialization (Kirisame et al., ICLR'21) — a *runtime* system
//! that executes in program order under a hard memory budget, evicting
//! the resident tensor minimizing `cost / (size · staleness)` on
//! allocation failure and transparently recomputing evicted tensors on
//! access.
//!
//! Because DTR is a runtime policy, it is reproduced as its own
//! execution simulation rather than a graph rewrite: the paper's
//! near-linear memory/latency trade-off (§7.2.3) and its thrashing
//! behaviour under very tight budgets ("DTR's processes … take too
//! long with a 40% memory limit") both emerge from this loop.

use magis_graph::GraphView;
use crate::BaselineResult;
use magis_graph::graph::{Graph, NodeId};
use magis_sim::memory::device_bytes;
use magis_sim::NodeCost;

/// Thrash guard: if recomputations exceed this multiple of the graph
/// size, the run is declared infeasible (the paper's "takes too long"
/// FAILURE case).
const THRASH_FACTOR: usize = 40;

struct Runtime<'g> {
    g: &'g Graph,
    cost: Vec<f64>,
    size: Vec<u64>,
    resident: Vec<bool>,
    pinned: Vec<bool>,
    last_use: Vec<u64>,
    clock: u64,
    mem: u64,
    peak: u64,
    latency: f64,
    executions: usize,
}

impl<'g> Runtime<'g> {
    fn new<C: NodeCost + ?Sized>(g: &'g Graph, cm: &C) -> Self {
        let cap = g.capacity();
        let mut cost = vec![0.0; cap];
        let mut size = vec![0u64; cap];
        let mut pinned = vec![false; cap];
        let mut mem = 0u64;
        for v in g.node_ids() {
            cost[v.index()] = cm.node_latency(g, v).max(1e-9);
            size[v.index()] = device_bytes(g, v);
            if g.node(v).op.is_input() {
                pinned[v.index()] = true; // inputs cannot be recomputed
                mem += size[v.index()];
            }
        }
        let mut resident = vec![false; cap];
        for v in g.node_ids() {
            if g.node(v).op.is_input() {
                resident[v.index()] = true;
            }
        }
        Runtime {
            g,
            cost,
            size,
            resident,
            pinned,
            last_use: vec![0; cap],
            clock: 0,
            mem,
            peak: mem,
            latency: 0.0,
            executions: 0,
        }
    }

    /// Evicts until `need` extra bytes fit under `budget`. Returns
    /// false when nothing evictable remains.
    fn make_room(&mut self, need: u64, budget: u64, protect: &[NodeId]) -> bool {
        while self.mem + need > budget {
            let victim = self
                .g
                .node_ids()
                .filter(|&v| {
                    let i = v.index();
                    self.resident[i]
                        && !self.pinned[i]
                        && self.size[i] > 0
                        && !protect.contains(&v)
                })
                .min_by(|&a, &b| {
                    let h = |v: NodeId| {
                        let i = v.index();
                        let staleness = (self.clock - self.last_use[i]).max(1) as f64;
                        self.cost[i] / (self.size[i] as f64 * staleness)
                    };
                    h(a).total_cmp(&h(b))
                });
            match victim {
                Some(v) => {
                    self.resident[v.index()] = false;
                    self.mem -= self.size[v.index()];
                }
                None => return false,
            }
        }
        true
    }

    /// Ensures `v`'s output is resident, recursively rematerializing.
    fn ensure(&mut self, v: NodeId, budget: u64, thrash_limit: usize) -> Result<(), bool> {
        if self.resident[v.index()] {
            self.last_use[v.index()] = self.clock;
            return Ok(());
        }
        if self.executions > thrash_limit {
            return Err(true); // thrashing
        }
        let inputs = self.g.pre_all(v);
        for &u in &inputs {
            self.ensure(u, budget, thrash_limit)?;
        }
        // Protect the operands while allocating the output.
        if !self.make_room(self.size[v.index()], budget, &inputs) {
            return Err(false); // genuinely infeasible
        }
        self.resident[v.index()] = true;
        self.mem += self.size[v.index()];
        self.peak = self.peak.max(self.mem);
        self.latency += self.cost[v.index()];
        self.executions += 1;
        self.clock += 1;
        self.last_use[v.index()] = self.clock;
        Ok(())
    }
}

/// Runs the DTR runtime simulation.
pub fn run<C: NodeCost + ?Sized>(g: &Graph, budget: Option<u64>, cm: &C) -> BaselineResult {
    let order = crate::pytorch::program_order(g);
    let Some(b) = budget else {
        let ev = magis_sim::evaluate(g, &order, cm);
        return BaselineResult { peak_bytes: ev.peak_bytes, latency: ev.latency, feasible: true };
    };
    let mut rt = Runtime::new(g, cm);
    let thrash_limit = THRASH_FACTOR * g.len();
    if rt.mem > b {
        return BaselineResult { peak_bytes: rt.mem, latency: 0.0, feasible: false };
    }
    // Reference counting over the program order: DTR frees tensors whose
    // Python-side references are gone. A tensor with no remaining future
    // use in the program is freed (it may be recomputed later if a
    // rematerialization chain needs it again).
    let mut future_uses = vec![0usize; g.capacity()];
    for &v in &order {
        for u in g.pre_all(v) {
            future_uses[u.index()] += 1;
        }
    }
    for &v in &order {
        match rt.ensure(v, b, thrash_limit) {
            Ok(()) => {}
            Err(_) => {
                return BaselineResult {
                    peak_bytes: rt.peak,
                    latency: rt.latency,
                    feasible: false,
                };
            }
        }
        for u in g.pre_all(v) {
            let i = u.index();
            future_uses[i] -= 1;
            if future_uses[i] == 0 && rt.resident[i] && !rt.pinned[i] {
                rt.resident[i] = false;
                rt.mem -= rt.size[i];
            }
        }
    }
    BaselineResult { peak_bytes: rt.peak, latency: rt.latency, feasible: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_models::mlp::{mlp, MlpConfig};
    use magis_sim::CostModel;

    fn anchor(g: &Graph, cm: &CostModel) -> BaselineResult {
        crate::pytorch::run(g, cm)
    }

    #[test]
    fn near_linear_tradeoff() {
        // Activation-dominated regime, as in the paper's workloads.
        let tg = mlp(&MlpConfig { batch: 2048, ..MlpConfig::default() });
        let cm = CostModel::default();
        let base = anchor(&tg.graph, &cm);
        let r80 = run(&tg.graph, Some((base.peak_bytes as f64 * 0.8) as u64), &cm);
        let r60 = run(&tg.graph, Some((base.peak_bytes as f64 * 0.6) as u64), &cm);
        assert!(r80.feasible && r60.feasible);
        assert!(r80.peak_bytes <= (base.peak_bytes as f64 * 0.8) as u64);
        assert!(r60.latency >= r80.latency, "tighter budget costs more");
        assert!(r80.latency >= base.latency * 0.999);
    }

    #[test]
    fn budget_below_pinned_weights_fails() {
        let tg = mlp(&MlpConfig::default());
        let cm = CostModel::default();
        let r = run(&tg.graph, Some(1 << 10), &cm);
        assert!(!r.feasible);
    }

    #[test]
    fn unconstrained_matches_anchor() {
        let tg = mlp(&MlpConfig::default());
        let cm = CostModel::default();
        let base = anchor(&tg.graph, &cm);
        let r = run(&tg.graph, None, &cm);
        assert_eq!(r.peak_bytes, base.peak_bytes);
    }
}
