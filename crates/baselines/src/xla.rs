//! XLA-like baseline (§7.1 baseline (4)): a compiler with a *greedy*
//! rematerialization pass — repeatedly recompute the cheapest-per-byte
//! hot tensor until the budget is met. The paper observes (§7.2.3)
//! that under tight budgets this cascades ("re-computing one operator
//! might depend on another operator's re-materialization"), producing
//! steep latency growth; the cascade emerges here naturally because a
//! recomputation extends its operands' lifetimes, creating new hot
//! spots that demand further recomputation.

use magis_graph::{GraphTxn, GraphView};
use crate::compilers::fused_latency;
use crate::BaselineResult;
use magis_graph::graph::{Graph, NodeId};
use magis_sched::stabilize_order;
use magis_sim::{memory_profile, storage_root, NodeCost};

/// Maximum rematerializations before declaring the budget unreachable.
const MAX_REMATS: usize = 4000;

fn rematable(g: &Graph, v: NodeId) -> bool {
    let n = g.node(v);
    !n.op.is_input() && !n.op.is_swap() && !n.op.is_alias() && n.size_bytes() > 0
}

/// Runs the greedy rematerialization planner.
pub fn run<C: NodeCost + ?Sized>(g: &Graph, budget: Option<u64>, cm: &C) -> BaselineResult {
    let mut g = g.clone();
    let mut order = crate::pytorch::program_order(&g);
    let mut prof = memory_profile(&g, &order);
    let Some(b) = budget else {
        return BaselineResult {
            peak_bytes: prof.peak_bytes,
            latency: fused_latency(&g, &order, cm, 0.8),
            feasible: true,
        };
    };
    let mut remats = 0usize;
    // Peak plateaus span many steps: a single rematerialization rarely
    // moves the maximum, so greedy needs patience before giving up.
    let mut stuck = 0usize;
    let mut tried = vec![false; g.capacity()];
    while prof.peak_bytes > b && remats < MAX_REMATS && stuck < 48 {
        tried.resize(g.capacity(), false); // clones extend the arena
        // Greedy pick: hot-spot producer with multiple users (or one
        // far user) maximizing bytes saved per recompute second.
        let mut pos = vec![usize::MAX; g.capacity()];
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        let n = order.len();
        let pick = prof
            .hotspots
            .iter()
            .copied()
            .map(|h| storage_root(&g, h))
            .filter(|&v| rematable(&g, v) && !tried[v.index()])
            .filter_map(|v| {
                let users = g.suc(v);
                let last = users.iter().copied().max_by_key(|u| pos[u.index()])?;
                let gap = pos[last.index()].saturating_sub(pos[v.index()]);
                if gap < n / 16 {
                    return None;
                }
                // The far-user cluster that will switch to the clone.
                let cut = pos[v.index()] + n / 10;
                let far: Vec<NodeId> =
                    users.iter().copied().filter(|u| pos[u.index()] > cut).collect();
                if far.is_empty() {
                    return None;
                }
                // XLA's greedy pass only recomputes an instruction whose
                // operands are *still live* at the recompute point — it
                // does not extend operand lifetimes to enable chains
                // (the §7.2.3 weakness: "re-computing one operator might
                // depend on another operator['s] re-materialization").
                let first_far = far.iter().map(|u| pos[u.index()]).min().expect("nonempty");
                let operands_live = g.pre_all(v).into_iter().all(|op| {
                    g.node(op).op.is_input()
                        || g.suc(op).iter().any(|u| pos[u.index()] >= first_far && *u != v)
                });
                if !operands_live {
                    return None;
                }
                let value = g.node(v).size_bytes() as f64 / cm.node_latency(&g, v).max(1e-9);
                Some((v, far, value))
            })
            .max_by(|a, b| a.2.total_cmp(&b.2));
        let Some((v, far, _)) = pick else { break };
        tried[v.index()] = true;
        let node = g.node(v).clone();
        let mut txn = GraphTxn::begin(&g);
        let Ok(clone) = txn.add_with_meta(node.op.clone(), node.inputs(), node.meta.clone())
        else {
            break;
        };
        let first = *far
            .iter()
            .min_by_key(|u| pos[u.index()])
            .expect("nonempty cluster");
        for &u in &far {
            txn.replace_input(u, v, clone);
        }
        g = txn.commit().0;
        remats += 1;
        // Desired position: clone right before its earliest user.
        let mut desired: Vec<NodeId> = Vec::with_capacity(order.len() + 1);
        for &o in &order {
            if o == first {
                desired.push(clone);
            }
            desired.push(o);
        }
        order = stabilize_order(&g, &desired);
        let new_prof = memory_profile(&g, &order);
        if new_prof.peak_bytes >= prof.peak_bytes {
            stuck += 1;
        } else {
            stuck = 0;
        }
        prof = new_prof;
    }
    BaselineResult {
        peak_bytes: prof.peak_bytes,
        latency: fused_latency(&g, &order, cm, 0.8),
        feasible: prof.peak_bytes <= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_models::mlp::{mlp, MlpConfig};
    use magis_sim::CostModel;

    #[test]
    fn remat_meets_moderate_budget_with_latency_cost() {
        // Activation-dominated regime, as in the paper's workloads.
        let tg = mlp(&MlpConfig { batch: 2048, ..MlpConfig::default() });
        let cm = CostModel::default();
        let base = run(&tg.graph, None, &cm);
        let budget = (base.peak_bytes as f64 * 0.8) as u64;
        let r = run(&tg.graph, Some(budget), &cm);
        assert!(r.feasible, "80% budget reachable: {} <= {budget}", r.peak_bytes);
        assert!(r.latency > base.latency, "remat re-pays compute");
    }

    #[test]
    fn impossible_budget_reports_failure() {
        let tg = mlp(&MlpConfig::default());
        let cm = CostModel::default();
        let r = run(&tg.graph, Some(1024), &cm);
        assert!(!r.feasible);
    }

    #[test]
    fn tighter_budgets_cost_more_latency() {
        let tg = mlp(&MlpConfig { layers: 10, ..MlpConfig::default() });
        let cm = CostModel::default();
        let base = run(&tg.graph, None, &cm);
        let r90 = run(&tg.graph, Some((base.peak_bytes as f64 * 0.9) as u64), &cm);
        let r75 = run(&tg.graph, Some((base.peak_bytes as f64 * 0.75) as u64), &cm);
        if r90.feasible && r75.feasible {
            assert!(r75.latency >= r90.latency);
        }
    }
}
