//! POFO-like baseline (§7.1 baseline (2)): Beaumont et al.'s optimal
//! combination of rematerialization and offloading for networks "with
//! simple structures and linearly connected cells" (NeurIPS'21).
//!
//! POFO plans on a *linearized chain*: each long-lived activation of
//! the forward pass gets one of {keep, offload, recompute}, chosen to
//! minimize latency overhead under the memory budget. Two structural
//! properties of the original are reproduced:
//!
//! * it only manages **chain-shaped lifetimes** — tensors produced in
//!   the forward sweep whose only late use is the matching backward
//!   step. Tensors with *mid-graph* extra consumers (U-Net's long skip
//!   connections feeding decoder concats) do not fit the chain model
//!   and stay resident — which is why the paper finds "POFO almost
//!   cannot optimize UNet & UNet++" (§7.2.2);
//! * its selection is cost-optimal per tensor (offload when the
//!   transfer hides, recompute when cheaper), yielding the near-linear
//!   trade-off curve of Fig. 11.
//!
//! Selection here is a density-greedy knapsack over per-tensor
//! overheads (the DP's continuous relaxation); chosen evictions are
//! applied as real `Store`/`Load` pairs or recompute clones and
//! measured by the shared simulator.

use magis_graph::{GraphTxn, GraphView};
use crate::BaselineResult;
use magis_graph::graph::{Graph, NodeId};
use magis_sched::{place_swaps, stabilize_order};
use magis_sim::{memory_profile, NodeCost};

/// Minimum tensor size POFO bothers to manage.
const MIN_BYTES: u64 = 1 << 16;

#[derive(Debug, Clone)]
struct Plan {
    tensor: NodeId,
    /// The late consumer cluster (e.g. the dX and dW reads of one
    /// backward stage), earliest first.
    late_users: Vec<NodeId>,
    /// Estimated latency overhead of evicting this tensor.
    overhead: f64,
    /// True: offload (Store/Load); false: recompute.
    offload: bool,
}

/// Identifies chain-manageable long-lived activations and their
/// cheapest eviction plan.
fn plans<C: NodeCost + ?Sized>(g: &Graph, order: &[NodeId], cm: &C) -> Vec<Plan> {
    let n = order.len();
    let mut pos = vec![usize::MAX; g.capacity()];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    let mut out = Vec::new();
    for v in g.node_ids() {
        let node = g.node(v);
        if node.op.is_input() || node.op.is_swap() || node.op.is_alias() {
            continue;
        }
        if node.size_bytes() < MIN_BYTES {
            continue;
        }
        let users = g.suc(v);
        let Some(&last) = users.iter().max_by_key(|u| pos[u.index()]) else { continue };
        let p = pos[v.index()];
        let lu = pos[last.index()];
        // Long-lived: the late use is far away.
        if lu.saturating_sub(p) < n / 6 {
            continue;
        }
        // Chain-manageable: every use is either near the producer
        // (forward neighbours) or inside the late backward cluster.
        let near_window = p + n / 10;
        let late_window = lu.saturating_sub(n / 10);
        let chain_ok = users
            .iter()
            .all(|&u| pos[u.index()] <= near_window || pos[u.index()] >= late_window);
        if !chain_ok {
            continue;
        }
        let mut late_users: Vec<NodeId> = users
            .iter()
            .copied()
            .filter(|&u| pos[u.index()] >= late_window && pos[u.index()] > near_window)
            .collect();
        late_users.sort_by_key(|u| pos[u.index()]);
        if late_users.is_empty() {
            continue;
        }
        // Offload: transfer hides behind the compute between producer
        // and consumer; exposed part is the overhead.
        let xfer = cm.device().xfer_time(node.size_bytes());
        let window: f64 = order[p + 1..lu].iter().map(|&w| cm.node_latency(g, w)).sum();
        let offload_over = 2.0 * cm.device().launch_overhead + (2.0 * xfer - window).max(0.0);
        // Recompute: pay the producer once more — but only when its
        // operands are graph inputs (recomputing from an intermediate
        // would pin that intermediate across the whole gap, undoing the
        // eviction; POFO's chain DP avoids exactly these conflicts).
        let remat_safe = g.pre(v).iter().all(|&u| g.node(u).op.is_input());
        let remat_over = cm.node_latency(g, v);
        let (overhead, offload) = if !remat_safe || offload_over <= remat_over {
            (offload_over, true)
        } else {
            (remat_over, false)
        };
        out.push(Plan { tensor: v, late_users, overhead, offload });
    }
    out
}

/// Runs the POFO-like planner under `budget`.
pub fn run<C: NodeCost + ?Sized>(g: &Graph, budget: Option<u64>, cm: &C) -> BaselineResult {
    let order0 = crate::pytorch::program_order(g);
    let base = memory_profile(g, &order0);
    let base_lat = magis_sim::simulate_latency(g, &order0, cm);
    let Some(b) = budget else {
        return BaselineResult { peak_bytes: base.peak_bytes, latency: base_lat, feasible: true };
    };
    if base.peak_bytes <= b {
        return BaselineResult { peak_bytes: base.peak_bytes, latency: base_lat, feasible: true };
    }
    let mut plans = plans(g, &order0, cm);
    // Density-greedy: cheapest overhead per byte first.
    plans.sort_by(|x, y| {
        let dx = x.overhead / g.node(x.tensor).size_bytes() as f64;
        let dy = y.overhead / g.node(y.tensor).size_bytes() as f64;
        dx.total_cmp(&dy)
    });

    let mut g2 = g.clone();
    let mut desired = order0.clone();
    let mut applied = 0usize;
    for plan in plans {
        let first_late = plan.late_users[0];
        // Apply the eviction: the whole late cluster reads the
        // reloaded/recomputed copy.
        if plan.offload {
            let mut txn = GraphTxn::begin(&g2);
            let Ok(st) = txn.add(magis_graph::OpKind::Store, &[plan.tensor]) else { continue };
            let Ok(ld) = txn.add(magis_graph::OpKind::Load, &[st]) else { continue };
            for &u in &plan.late_users {
                txn.replace_input(u, plan.tensor, ld);
            }
            g2 = txn.commit().0;
            let at = desired.iter().position(|&v| v == first_late).expect("user scheduled");
            desired.insert(at, ld);
            let pat = desired.iter().position(|&v| v == plan.tensor).expect("producer scheduled");
            desired.insert(pat + 1, st);
        } else {
            let node = g2.node(plan.tensor).clone();
            let mut txn = GraphTxn::begin(&g2);
            let Ok(clone) = txn.add_with_meta(node.op.clone(), node.inputs(), node.meta.clone())
            else {
                continue;
            };
            for &u in &plan.late_users {
                txn.replace_input(u, plan.tensor, clone);
            }
            g2 = txn.commit().0;
            let at = desired.iter().position(|&v| v == first_late).expect("user scheduled");
            desired.insert(at, clone);
        }
        applied += 1;
        // Re-measure every few applications (profiles are cheap).
        if applied.is_multiple_of(4) || applied < 4 {
            let order = place_swaps(&g2, &stabilize_order(&g2, &desired), cm);
            let ev = magis_sim::evaluate(&g2, &order, cm);
            if ev.peak_bytes <= b {
                return BaselineResult {
                    peak_bytes: ev.peak_bytes,
                    latency: ev.latency,
                    feasible: true,
                };
            }
        }
    }
    let order = place_swaps(&g2, &stabilize_order(&g2, &desired), cm);
    let ev = magis_sim::evaluate(&g2, &order, cm);
    BaselineResult { peak_bytes: ev.peak_bytes, latency: ev.latency, feasible: ev.peak_bytes <= b }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_models::mlp::{mlp, MlpConfig};
    use magis_models::unet::{unet, UNetConfig};
    use magis_sim::CostModel;

    #[test]
    fn chain_network_optimizes_well() {
        // Activation-dominated regime, as in the paper's workloads.
        let tg = mlp(&MlpConfig { batch: 2048, ..MlpConfig::default() });
        let cm = CostModel::default();
        let base = crate::pytorch::run(&tg.graph, &cm);
        let r = run(&tg.graph, Some((base.peak_bytes as f64 * 0.78) as u64), &cm);
        assert!(r.feasible, "78% budget on an MLP chain: peak {}", r.peak_bytes);
        // Swap overlap keeps the overhead moderate on this
        // bandwidth-heavy toy; the paper-scale workloads (conv/attention
        // compute) hide transfers far better.
        assert!(r.latency < base.latency * 2.0, "{} vs {}", r.latency, base.latency);
    }

    #[test]
    fn unet_skips_defeat_the_chain_model() {
        // The paper: "POFO almost cannot optimize UNet & UNet++".
        let tg = unet(&UNetConfig {
            batch: 4,
            image: 96,
            width: 16,
            depth: 3,
            classes: 4,
            dtype: magis_graph::DType::F32,
        });
        let cm = CostModel::default();
        let base = crate::pytorch::run(&tg.graph, &cm);
        let r = run(&tg.graph, Some((base.peak_bytes as f64 * 0.5) as u64), &cm);
        // Many U-Net tensors are unmanageable; deep budgets fail.
        assert!(
            !r.feasible || r.peak_bytes > base.peak_bytes / 3,
            "U-Net resists chain planning"
        );
    }
}
