//! Scheduling tasks: a node subset prepared for memory-aware ordering.
//!
//! A [`SchedTask`] compiles the lifetime semantics of
//! [`magis_sim::memory`] (storage roots, aliases, anchored allocations,
//! host-resident `Store` outputs, boundary tensors) into dense local
//! index space so the DP/beam schedulers can evaluate memory deltas in
//! O(degree) per transition.

use magis_graph::GraphView;
use magis_graph::algo::topo::topo_order_of;
use magis_graph::graph::{Graph, NodeId};
use magis_sim::memory::{device_bytes, storage_root};
use std::collections::{BTreeMap, BTreeSet};

/// A storage root relevant to a scheduling window.
#[derive(Debug, Clone)]
pub struct RootInfo {
    /// Bytes owned by the root's storage.
    pub bytes: u64,
    /// Local indices of window nodes that must execute before the root
    /// can be freed (readers of the storage, through aliases).
    pub users: Vec<usize>,
    /// Whether the root can be freed inside this window (no users
    /// outside it and it is not a terminal output).
    pub freeable: bool,
    /// Local index of the node whose execution allocates the root
    /// (`None`: already resident at window start — counted in `base`).
    pub alloc_at: Option<usize>,
}

/// A prepared scheduling problem over a subset of graph nodes.
#[derive(Debug, Clone)]
pub struct SchedTask<'g> {
    g: &'g Graph,
    /// Window nodes in local-index order.
    pub nodes: Vec<NodeId>,
    /// Local predecessors (dependencies inside the window, deduplicated).
    pub preds: Vec<Vec<usize>>,
    /// Local successors.
    pub succs: Vec<Vec<usize>>,
    /// Storage roots touched by the window.
    pub roots: Vec<RootInfo>,
    /// For each local node: indices into `roots` this node allocates.
    pub allocs: Vec<Vec<usize>>,
    /// For each local node: indices into `roots` this node uses (its
    /// execution may complete the root's user set and free it).
    pub uses: Vec<Vec<usize>>,
    /// Bytes resident for the whole window (boundary inputs).
    pub base: u64,
}

impl<'g> SchedTask<'g> {
    /// Prepares a scheduling task over all live nodes of `g`.
    pub fn whole_graph(g: &'g Graph) -> Self {
        let set: BTreeSet<NodeId> = g.node_ids().collect();
        Self::subset(g, &set)
    }

    /// Prepares a scheduling task over `set ⊆ V(g)`.
    ///
    /// Boundary tensors produced outside `set` but read inside it are
    /// charged to `base` for the window's duration; tensors with
    /// readers outside `set` are never freed inside the window.
    pub fn subset(g: &'g Graph, set: &BTreeSet<NodeId>) -> Self {
        let nodes: Vec<NodeId> = set.iter().copied().collect();
        // Dense slot→local-index table (usize::MAX = outside the
        // window): membership tests and index mapping in one probe.
        let mut local = vec![usize::MAX; g.capacity()];
        for (i, &v) in nodes.iter().enumerate() {
            local[v.index()] = i;
        }
        let n = nodes.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (i, &v) in nodes.iter().enumerate() {
            let node = g.node(v);
            let mut ps: Vec<usize> = node
                .inputs()
                .iter()
                .chain(node.keepalive())
                .filter_map(|p| {
                    let li = local[p.index()];
                    (li != usize::MAX).then_some(li)
                })
                .collect();
            ps.sort_unstable();
            ps.dedup();
            for &p in &ps {
                succs[p].push(i);
            }
            preds[i] = ps;
        }

        // Gather relevant storage roots: roots of window nodes plus
        // roots read by window nodes. Alias-chain walks are memoized
        // per slot — a root is queried once per incident edge.
        let mut root_memo: Vec<u32> = vec![u32::MAX; g.capacity()];
        let mut root_of = |v: NodeId| -> NodeId {
            let cached = root_memo[v.index()];
            if cached != u32::MAX {
                return NodeId::from_index(cached as usize);
            }
            let r = storage_root(g, v);
            root_memo[v.index()] = r.index() as u32;
            r
        };
        let mut root_ids: BTreeSet<NodeId> = BTreeSet::new();
        for &v in &nodes {
            root_ids.insert(root_of(v));
            let node = g.node(v);
            for &p in node.inputs().iter().chain(node.keepalive()) {
                root_ids.insert(root_of(p));
            }
        }

        let mut roots = Vec::new();
        let mut allocs = vec![Vec::new(); n];
        let mut uses = vec![Vec::new(); n];
        let mut base = 0u64;
        for rid in root_ids {
            let bytes = device_bytes(g, rid);
            if bytes == 0 {
                continue;
            }
            // Users of the root's storage: successors of the root and of
            // every alias chained onto it. Aliases themselves also count
            // as (trivial) readers.
            let mut user_nodes: BTreeSet<NodeId> = BTreeSet::new();
            let mut alias_stack = vec![rid];
            while let Some(a) = alias_stack.pop() {
                for &s in g.node(a).succs() {
                    if user_nodes.insert(s)
                        && g.node(s).op.is_alias()
                        && root_of(s) == rid
                    {
                        alias_stack.push(s);
                    }
                }
            }
            let terminal = user_nodes.is_empty();
            let mut users: Vec<usize> = Vec::new();
            let mut outside_user = false;
            for u in &user_nodes {
                let li = local[u.index()];
                if li != usize::MAX {
                    users.push(li);
                } else {
                    outside_user = true;
                }
            }
            let freeable = !terminal && !outside_user;
            // Allocation point.
            let anchor = g.node(rid).alloc_with.unwrap_or(rid);
            let alloc_at = if g.node(rid).op.is_input() {
                None // inputs resident from the start
            } else {
                let li = local[anchor.index()];
                (li != usize::MAX).then_some(li)
            };
            if alloc_at.is_none() {
                base += bytes;
            }
            let idx = roots.len();
            roots.push(RootInfo { bytes, users: users.clone(), freeable, alloc_at });
            if let Some(a) = alloc_at {
                allocs[a].push(idx);
            }
            for &u in &users {
                uses[u].push(idx);
            }
        }
        SchedTask { g, nodes, preds, succs, roots, allocs, uses, base }
    }

    /// Number of window nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// A valid (deterministic) topological order of the window, in
    /// local indices — the fallback schedule.
    pub fn default_order(&self) -> Vec<usize> {
        let set: BTreeSet<NodeId> = self.nodes.iter().copied().collect();
        let order = topo_order_of(self.g, &set);
        let local: BTreeMap<NodeId, usize> =
            self.nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        order.into_iter().map(|v| local[&v]).collect()
    }

    /// Translates local indices back to node ids.
    pub fn to_node_ids(&self, order: &[usize]) -> Vec<NodeId> {
        order.iter().map(|&i| self.nodes[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_graph::builder::GraphBuilder;
    use magis_graph::tensor::DType;

    const KB: u64 = 1024;

    #[test]
    fn whole_graph_task_roots() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([256], "x");
        let a = b.relu(x);
        let _y = b.relu(a);
        let g = b.finish();
        let t = SchedTask::whole_graph(&g);
        assert_eq!(t.len(), 3);
        // x is an input: contributes to base; a and y allocate on exec.
        assert_eq!(t.base, KB);
        assert_eq!(t.roots.iter().filter(|r| r.alloc_at.is_some()).count(), 2);
        // a is freeable (its only user is in the window); y is terminal.
        let a_root = t.roots.iter().find(|r| r.alloc_at == Some(1)).unwrap();
        assert!(a_root.freeable);
        let y_root = t.roots.iter().find(|r| r.alloc_at == Some(2)).unwrap();
        assert!(!y_root.freeable);
    }

    #[test]
    fn subset_boundary_semantics() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([256], "x");
        let a = b.relu(x);
        let c = b.relu(a);
        let d = b.relu(c);
        let g = b.finish();
        // Window {c, d}: a is a boundary input -> base; c freeable, d not.
        let set: BTreeSet<NodeId> = [c, d].into_iter().collect();
        let t = SchedTask::subset(&g, &set);
        assert_eq!(t.base, KB, "boundary tensor a");
        assert_eq!(t.len(), 2);
        assert_eq!(t.preds[1], vec![0], "d depends on c locally");
        let _ = (x, a);
    }

    #[test]
    fn alias_users_attach_to_root() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([256], "x");
        let a = b.relu(x);
        let r = b.reshape(a, [16, 16]);
        let y = b.relu(r);
        let g = b.finish();
        let t = SchedTask::whole_graph(&g);
        // Root `a`: users include the alias r and the reader y.
        let a_root = t
            .roots
            .iter()
            .find(|ri| ri.alloc_at.is_some() && ri.bytes == KB && ri.freeable)
            .unwrap();
        assert_eq!(a_root.users.len(), 2);
        let _ = y;
    }
}
