//! # magis-sched
//!
//! Memory-aware scheduling substrate for the MAGIS reproduction:
//!
//! * [`task::SchedTask`] — lifetime-accurate scheduling windows,
//! * [`dp::dp_schedule`] — Serenity-style memory-optimal ordering DP
//!   with a beam cap (`DpSchedule` in Algorithm 2),
//! * [`partition::partition`] — narrow-waist graph partitioning
//!   (`GraphPartition`),
//! * [`incremental::incremental_schedule`] — Algorithm 2 end to end,
//! * [`schedule::full_schedule`] — the full-scheduling baseline,
//! * [`validate::Schedule`] — typed schedule validation (exactly-once
//!   coverage + topological order) for the hardened search pipeline.
//!
//! ```
//! use magis_graph::builder::GraphBuilder;
//! use magis_graph::tensor::DType;
//! use magis_graph::GraphView;
//! use magis_sched::{full_schedule, SchedConfig};
//!
//! let mut b = GraphBuilder::new(DType::F32);
//! let x = b.input([128], "x");
//! let a = b.relu(x);
//! let c = b.gelu(x);
//! let _ = b.add_op(a, c);
//! let g = b.finish();
//! let order = full_schedule(&g, &SchedConfig::default());
//! assert_eq!(order.len(), g.len());
//! ```

#![warn(missing_docs)]

pub mod dp;
pub mod incremental;
pub mod partition;
pub mod schedule;
pub mod task;
pub mod validate;

pub use dp::{dp_schedule, DpResult, SchedConfig};
pub use incremental::{
    incremental_schedule, incremental_schedule_cached, incremental_schedule_profiled,
    reschedule_interval, reschedule_interval_cached,
    IncrementalSchedule, IntervalParams,
};
pub use partition::partition;
#[allow(deprecated)]
pub use schedule::place_swaps_with;
pub use schedule::{full_schedule, place_swaps, stabilize_order};
pub use task::SchedTask;
pub use validate::{validate_schedule, Schedule, ScheduleError};
