//! Full-graph scheduling and order stabilization.

use magis_graph::GraphView;
use crate::dp::{dp_schedule, SchedConfig};
use crate::partition::partition;
use crate::task::SchedTask;
use magis_graph::graph::{Graph, NodeId};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// Repairs a desired node sequence into a valid topological order of
/// `g`, staying as close to the desired order as dependencies allow
/// (stable Kahn: always emit the ready node that appears earliest in
/// the desired sequence).
///
/// Nodes of `g` missing from `desired` are appended by dependency
/// order; stale ids in `desired` are ignored.
pub fn stabilize_order(g: &Graph, desired: &[NodeId]) -> Vec<NodeId> {
    let mut want = vec![usize::MAX; g.capacity()];
    for (i, &v) in desired.iter().enumerate() {
        if g.contains(v) && want[v.index()] == usize::MAX {
            want[v.index()] = i;
        }
    }
    // Unlisted nodes sort after everything, by id.
    let rank = |v: NodeId| -> (usize, usize) { (want[v.index()], v.index()) };

    let mut indeg = vec![0usize; g.capacity()];
    for v in g.node_ids() {
        let n = g.node(v);
        indeg[v.index()] = n.inputs().len() + n.keepalive().len();
    }
    let mut heap: BinaryHeap<Reverse<((usize, usize), NodeId)>> = g
        .node_ids()
        .filter(|v| indeg[v.index()] == 0)
        .map(|v| Reverse((rank(v), v)))
        .collect();
    let mut out = Vec::with_capacity(g.len());
    while let Some(Reverse((_, v))) = heap.pop() {
        out.push(v);
        // Raw successor list: one entry per edge, so each occurrence
        // decrements the in-degree exactly once.
        for &s in g.node(v).succs() {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                heap.push(Reverse((rank(s), s)));
            }
        }
    }
    debug_assert_eq!(out.len(), g.len(), "stabilize requires an acyclic graph");
    out
}

/// Full-graph memory-aware scheduling: narrow-waist partition, then
/// per-piece memory DP, then stabilization. The result is guaranteed
/// to be no worse (in peak memory) than the deterministic program
/// order — partition-boundary approximations occasionally regress, in
/// which case the program order is returned instead.
///
/// This is the `InitState` scheduler of Algorithm 3 and the "full
/// scheduling (FS)" baseline of §7.3.
pub fn full_schedule(g: &Graph, cfg: &SchedConfig) -> Vec<NodeId> {
    let start = std::time::Instant::now();
    let mut span = magis_obs::span!("magis_sched", "full_schedule", nodes = g.len());
    let all: BTreeSet<NodeId> = g.node_ids().collect();
    let mut desired = Vec::with_capacity(g.len());
    for piece in partition(g, &all) {
        let set: BTreeSet<NodeId> = piece.iter().copied().collect();
        let task = SchedTask::subset(g, &set);
        let res = dp_schedule(&task, cfg);
        desired.extend(task.to_node_ids(&res.order));
    }
    let dp_order = stabilize_order(g, &desired);
    let fallback = magis_graph::algo::topo_order(g);
    let dp_peak = magis_sim::memory_profile(g, &dp_order).peak_bytes;
    let naive_peak = magis_sim::memory_profile(g, &fallback).peak_bytes;
    span.record("peak_bytes", dp_peak.min(naive_peak));
    {
        use std::sync::OnceLock;
        static RUNS: OnceLock<magis_obs::metrics::Counter> = OnceLock::new();
        static SECONDS: OnceLock<magis_obs::metrics::Histogram> = OnceLock::new();
        RUNS.get_or_init(|| magis_obs::metrics::counter("magis_sched_full_runs")).inc();
        SECONDS
            .get_or_init(|| magis_obs::metrics::histogram("magis_sched_full_seconds"))
            .observe_duration(start.elapsed());
    }
    if dp_peak <= naive_peak {
        dp_order
    } else {
        fallback
    }
}

/// Positions of each node within an order (inverse permutation).
pub fn positions(g: &Graph, order: &[NodeId]) -> HashMap<NodeId, usize> {
    let _ = g;
    order.iter().enumerate().map(|(i, &v)| (v, i)).collect()
}

/// [`place_swaps`] under its old concrete-source name.
#[deprecated(since = "0.2.0", note = "`place_swaps` is now generic; call it directly")]
pub fn place_swaps_with<C: magis_sim::NodeCost + ?Sized>(
    g: &Graph,
    order: &[NodeId],
    cm: &C,
) -> Vec<NodeId> {
    place_swaps(g, order, cm)
}

/// Repositions swap operators per the paper's strategy (§6.2): every
/// `Store` directly after its producer, every `Load` as late as its
/// transfer time can still be hidden behind the intervening compute.
///
/// Generic over any [`magis_sim::NodeCost`] latency source — the raw
/// cost model for a registry backend, or the optimizer's shared
/// [`magis_sim::PerfCache`], whose memoized latencies make the
/// hide-the-transfer walk-back cheap across thousands of candidates
/// (bit-identical to the fronted model).
pub fn place_swaps<C: magis_sim::NodeCost + ?Sized>(
    g: &Graph,
    order: &[NodeId],
    cm: &C,
) -> Vec<NodeId> {
    use magis_graph::op::OpKind;
    let swaps: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|&v| g.node(v).op.is_swap())
        .collect();
    if swaps.is_empty() {
        return order.to_vec();
    }
    let stripped: Vec<NodeId> =
        order.iter().copied().filter(|&v| !g.node(v).op.is_swap()).collect();
    let mut pos: HashMap<NodeId, usize> = HashMap::new();
    for (i, &v) in stripped.iter().enumerate() {
        pos.insert(v, i);
    }
    // Insertion index in `stripped` -> nodes to place before that step.
    let mut inserts: Vec<(usize, NodeId)> = Vec::new();
    for &s in &swaps {
        match g.node(s).op {
            OpKind::Store => {
                let producer = g.pre(s)[0];
                let at = pos.get(&producer).map(|&p| p + 1).unwrap_or(0);
                inserts.push((at, s));
            }
            OpKind::Load => {
                // Earliest non-swap consumer.
                let consumer = g
                    .suc(s)
                    .into_iter()
                    .filter_map(|c| pos.get(&c).copied())
                    .min()
                    .unwrap_or(stripped.len());
                let need = cm.node_latency(g, s);
                let mut acc = 0.0;
                let mut at = consumer;
                while at > 0 && acc < need {
                    at -= 1;
                    acc += cm.node_latency(g, stripped[at]);
                }
                inserts.push((at, s));
            }
            _ => unreachable!("swaps filtered above"),
        }
    }
    inserts.sort_by_key(|&(at, v)| (at, v));
    let mut desired = Vec::with_capacity(order.len());
    let mut it = inserts.into_iter().peekable();
    for (i, &v) in stripped.iter().enumerate() {
        while matches!(it.peek(), Some(&(at, _)) if at <= i) {
            desired.push(it.next().expect("peeked").1);
        }
        desired.push(v);
    }
    desired.extend(it.map(|(_, v)| v));
    // Dependencies (Store after producer, Load after Store) are
    // restored by stabilization if the cost walk-back overshot.
    stabilize_order(g, &desired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_graph::algo::{is_topo_order, topo_order};
    use magis_graph::builder::GraphBuilder;
    use magis_graph::tensor::DType;
    use magis_sim::memory::memory_profile;

    #[test]
    fn stabilize_fixes_violations() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64], "x");
        let a = b.relu(x);
        let c = b.gelu(a);
        let g = b.finish();
        // Desired order is reversed: stabilization must repair it.
        let out = stabilize_order(&g, &[c, a, x]);
        assert!(is_topo_order(&g, &out));
        assert_eq!(out, vec![x, a, c]);
    }

    #[test]
    fn stabilize_preserves_valid_order() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64], "x");
        let a = b.relu(x);
        let c = b.gelu(x);
        let j = b.add_op(a, c);
        let g = b.finish();
        let order = vec![x, c, a, j];
        assert!(is_topo_order(&g, &order));
        assert_eq!(stabilize_order(&g, &order), order);
    }

    #[test]
    fn stabilize_appends_missing_nodes() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64], "x");
        let a = b.relu(x);
        let c = b.gelu(a);
        let g = b.finish();
        let out = stabilize_order(&g, &[x]);
        assert!(is_topo_order(&g, &out));
        assert_eq!(out.len(), 3);
        let _ = c;
    }

    #[test]
    fn full_schedule_no_worse_than_naive() {
        // Wide fan-out graph where naive order is suboptimal.
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([1024], "x");
        let mut prods = Vec::new();
        for _ in 0..6 {
            prods.push(b.relu(x));
        }
        let mut acc = prods[0];
        for &p in &prods[1..] {
            acc = b.add_op(acc, p);
        }
        let g = b.finish();
        let naive_peak = memory_profile(&g, &topo_order(&g)).peak_bytes;
        let sched = full_schedule(&g, &SchedConfig::default());
        assert!(is_topo_order(&g, &sched));
        let peak = memory_profile(&g, &sched).peak_bytes;
        assert!(peak <= naive_peak);
    }
}
