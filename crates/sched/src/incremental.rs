//! Incremental scheduling (Algorithm 2 of the paper).
//!
//! After a graph transformation mutates a small region, only a window
//! of the previous schedule around that region needs rescheduling. The
//! window is grown outwards until it hits nodes with low narrow-waist
//! values — natural cut points where the old prefix/suffix remain
//! near-optimal — then the window is partitioned and re-ordered with
//! the memory-DP, and the pieces are merged back into the old schedule.

use magis_graph::GraphView;
use crate::dp::{dp_schedule, SchedConfig};
use crate::partition::partition;
use crate::schedule::stabilize_order;
use crate::task::SchedTask;
use magis_graph::algo::reach::Reachability;
use magis_graph::graph::{Graph, NodeId};
use magis_sim::{CostError, Lifetimes, MemoryPlan, MemoryProfile};
use std::collections::BTreeSet;

/// The empirical constants of `ExtendBound` (Algorithm 2 line 4); the
/// paper reports 20/10/4 "perform well in practice".
#[derive(Debug, Clone)]
pub struct IntervalParams {
    /// Maximum steps to extend in each direction (`l < 20`).
    pub max_steps: usize,
    /// Keep extending while the best NW seen exceeds this (`ŵ > 10`).
    pub high_nw: usize,
    /// Keep extending while the current NW is below this (`nw(v) < 4`).
    pub low_nw: usize,
}

impl Default for IntervalParams {
    fn default() -> Self {
        IntervalParams { max_steps: 20, high_nw: 10, low_nw: 4 }
    }
}

/// `GetRescheduleInterval`: the half-open index range `[beg, end)` of
/// `psi_old` that must be rescheduled, given the mutated nodes `s_old`.
///
/// Returns `None` when no mutated node appears in the old schedule
/// (e.g. the transformation only added nodes).
pub fn reschedule_interval(
    g_old: &Graph,
    s_old: &BTreeSet<NodeId>,
    psi_old: &[NodeId],
    params: &IntervalParams,
) -> Option<(usize, usize)> {
    reschedule_interval_cached(g_old, s_old, psi_old, params, None)
}

/// [`reschedule_interval`] with an optional precomputed reachability of
/// `g_old`. A parent state's reachability is identical for every
/// candidate derived from it, so the search computes it once and hands
/// it to each evaluation instead of paying `Reachability::compute` per
/// candidate.
pub fn reschedule_interval_cached(
    g_old: &Graph,
    s_old: &BTreeSet<NodeId>,
    psi_old: &[NodeId],
    params: &IntervalParams,
    reach: Option<&Reachability>,
) -> Option<(usize, usize)> {
    let idxs: Vec<usize> = psi_old
        .iter()
        .enumerate()
        .filter(|(_, v)| s_old.contains(v))
        .map(|(i, _)| i)
        .collect();
    let (&lo, &hi) = (idxs.first()?, idxs.last()?);
    let computed;
    let reach = match reach {
        Some(r) => r,
        None => {
            computed = Reachability::compute(g_old);
            &computed
        }
    };
    let nw = |i: usize| reach.narrow_waist(psi_old[i]);
    let extend = |mut i: usize, dir: i64| -> usize {
        let mut best = usize::MAX;
        let mut l = 0;
        loop {
            if l >= params.max_steps {
                break;
            }
            let w = nw(i);
            if !((best == usize::MAX || best > params.high_nw || w < params.low_nw) && w < best) {
                break;
            }
            best = w;
            let ni = i as i64 + dir;
            if ni < 0 || ni as usize >= psi_old.len() {
                break;
            }
            i = ni as usize;
            l += 1;
        }
        i
    };
    let beg = extend(lo, -1);
    let end = extend(hi, 1);
    Some((beg, end + 1))
}

fn record_inc_obs(carried_won: bool, window: usize, start: std::time::Instant) {
    use std::sync::OnceLock;
    struct IncObs {
        runs: magis_obs::metrics::Counter,
        carried: magis_obs::metrics::Counter,
        seconds: magis_obs::metrics::Histogram,
        window: magis_obs::metrics::Histogram,
    }
    static OBS: OnceLock<IncObs> = OnceLock::new();
    let obs = OBS.get_or_init(|| IncObs {
        runs: magis_obs::metrics::counter("magis_sched_incremental_runs"),
        carried: magis_obs::metrics::counter("magis_sched_incremental_carried_wins"),
        seconds: magis_obs::metrics::histogram("magis_sched_incremental_seconds"),
        window: magis_obs::metrics::histogram("magis_sched_incremental_window"),
    });
    obs.runs.inc();
    if carried_won {
        obs.carried.inc();
    }
    obs.window.observe(window as f64);
    obs.seconds.observe_duration(start.elapsed());
}

/// Result of [`incremental_schedule_profiled`]: the chosen order plus
/// the memory profile and lifetime table that were computed while
/// choosing it — the evaluation pipeline reuses them instead of
/// re-profiling from scratch, and carries the lifetimes forward as the
/// parent table for the *next* incremental step.
#[derive(Debug, Clone)]
pub struct IncrementalSchedule {
    /// A valid topological order of the new graph.
    pub order: Vec<NodeId>,
    /// Memory profile of `order` (bit-identical to a full
    /// [`magis_sim::memory_profile_checked`] of it).
    pub profile: MemoryProfile,
    /// Lifetime table of `order`, for the next delta update.
    pub lifetimes: Lifetimes,
    /// Memory plan of `order`, delta-derived from the parent's plan
    /// when one was handed in (`None` when planning is off).
    pub plan: Option<MemoryPlan>,
    /// Width of the rescheduled window (old-schedule steps).
    pub window: usize,
    /// Whether the carried-over old order beat the rescheduled window.
    pub carried_won: bool,
}

/// Incremental scheduling (Algorithm 2): derives a schedule for
/// `g_new` from the old schedule `psi_old` of `g_old` and the set of
/// old nodes `s_old` touched by the transformation.
///
/// The returned order is always a valid topological order of `g_new`.
///
/// This compatibility wrapper profiles from scratch; the evaluation
/// pipeline uses [`incremental_schedule_profiled`] with the parent's
/// lifetime table so the rescheduled-vs-carried guard runs on delta
/// profiles instead of two full ones.
///
/// # Panics
///
/// Panics if memory accounting is not conserved (a corrupt graph or
/// schedule).
pub fn incremental_schedule(
    g_old: &Graph,
    g_new: &Graph,
    s_old: &BTreeSet<NodeId>,
    psi_old: &[NodeId],
    cfg: &SchedConfig,
    params: &IntervalParams,
) -> Vec<NodeId> {
    incremental_schedule_profiled(g_old, g_new, s_old, psi_old, None, None, cfg, params)
        .expect("memory accounting conserved")
        .order
}

/// [`incremental_schedule`] returning the chosen order *with* its
/// memory profile and lifetime table.
///
/// When `parent_lifetimes` is the table of `(g_old, psi_old)`, both
/// candidate orders (rescheduled window and carried-over old order)
/// are profiled by delta update ([`magis_sim::memory_profile_delta`]);
/// otherwise they are profiled from scratch. Either way the returned
/// profile/lifetimes are bit-identical to a full recomputation.
///
/// When `parent_plan` is the memory plan of `(g_old, psi_old)`, both
/// candidate orders are additionally re-planned by delta update
/// ([`magis_sim::memory_plan_delta`]) and the rescheduled-vs-carried
/// guard compares `(planned_peak, liveness_peak)` lexicographically,
/// so the planned objective steers the choice without the liveness
/// path losing its tiebreak.
///
/// # Errors
///
/// Returns a typed [`CostError`] on coverage or memory-conservation
/// defects.
#[allow(clippy::too_many_arguments)]
pub fn incremental_schedule_profiled(
    g_old: &Graph,
    g_new: &Graph,
    s_old: &BTreeSet<NodeId>,
    psi_old: &[NodeId],
    parent_lifetimes: Option<&Lifetimes>,
    parent_plan: Option<&MemoryPlan>,
    cfg: &SchedConfig,
    params: &IntervalParams,
) -> Result<IncrementalSchedule, CostError> {
    incremental_schedule_cached(
        g_old,
        g_new,
        s_old,
        psi_old,
        parent_lifetimes,
        parent_plan,
        cfg,
        params,
        None,
    )
}

/// [`incremental_schedule_profiled`] with an optional precomputed
/// reachability of `g_old` (see [`reschedule_interval_cached`]).
#[allow(clippy::too_many_arguments)]
pub fn incremental_schedule_cached(
    g_old: &Graph,
    g_new: &Graph,
    s_old: &BTreeSet<NodeId>,
    psi_old: &[NodeId],
    parent_lifetimes: Option<&Lifetimes>,
    parent_plan: Option<&MemoryPlan>,
    cfg: &SchedConfig,
    params: &IntervalParams,
    reach_old: Option<&Reachability>,
) -> Result<IncrementalSchedule, CostError> {
    let start = std::time::Instant::now();
    let mut span = magis_obs::span!("magis_sched", "incremental_schedule", nodes = g_new.len());
    let (beg, end) = match reschedule_interval_cached(g_old, s_old, psi_old, params, reach_old) {
        Some(r) => r,
        // Pure additions: reschedule only the new nodes, appended where
        // their dependencies allow.
        None => (psi_old.len(), psi_old.len()),
    };
    let window = end.saturating_sub(beg);
    span.record("window", window);
    let prefix: Vec<NodeId> =
        psi_old[..beg].iter().copied().filter(|&v| g_new.contains(v)).collect();
    let suffix: Vec<NodeId> =
        psi_old[end..].iter().copied().filter(|&v| g_new.contains(v)).collect();
    let kept: BTreeSet<NodeId> = prefix.iter().chain(suffix.iter()).copied().collect();
    let s_new: BTreeSet<NodeId> =
        g_new.node_ids().filter(|v| !kept.contains(v)).collect();

    let mut middle = Vec::with_capacity(s_new.len());
    for piece in partition(g_new, &s_new) {
        let set: BTreeSet<NodeId> = piece.iter().copied().collect();
        let task = SchedTask::subset(g_new, &set);
        let res = dp_schedule(&task, cfg);
        middle.extend(task.to_node_ids(&res.order));
    }

    let desired: Vec<NodeId> =
        prefix.into_iter().chain(middle).chain(suffix).collect();
    let rescheduled = stabilize_order(g_new, &desired);
    // Guard: rescheduling a window can occasionally lose to simply
    // carrying the old order over (boundary effects). Keep the better
    // of the two — a delta profile is far cheaper than the DP.
    let carried = stabilize_order(g_new, psi_old);
    let profile_of = |order: &[NodeId]| match parent_lifetimes {
        Some(lt) => magis_sim::memory_profile_delta(g_new, order, g_old, psi_old, lt, s_old),
        None => magis_sim::memory_profile_lifetimes(g_new, order),
    };
    let plan_of = |order: &[NodeId], lt: &Lifetimes| match parent_plan {
        Some(pp) => magis_sim::memory_plan_delta(g_new, order, lt, pp).map(Some),
        None => Ok(None),
    };
    let (new_prof, new_lt) = profile_of(&rescheduled)?;
    if carried == rescheduled {
        // Identical orders: both sides of the guard would profile and
        // plan to identical results and the strict > below is false.
        // Skip the redundant half outright.
        let new_plan = plan_of(&rescheduled, &new_lt)?;
        span.record("carried_won", false);
        record_inc_obs(false, window, start);
        return Ok(IncrementalSchedule {
            order: rescheduled,
            profile: new_prof,
            lifetimes: new_lt,
            plan: new_plan,
            window,
            carried_won: false,
        });
    }
    let (old_prof, old_lt) = profile_of(&carried)?;
    let new_plan = plan_of(&rescheduled, &new_lt)?;
    let old_plan = plan_of(&carried, &old_lt)?;
    let carried_won = match (&new_plan, &old_plan) {
        (Some(np), Some(op)) => {
            (np.planned_peak_bytes, new_prof.peak_bytes)
                > (op.planned_peak_bytes, old_prof.peak_bytes)
        }
        _ => new_prof.peak_bytes > old_prof.peak_bytes,
    };
    span.record("carried_won", carried_won);
    record_inc_obs(carried_won, window, start);
    Ok(if carried_won {
        IncrementalSchedule {
            order: carried,
            profile: old_prof,
            lifetimes: old_lt,
            plan: old_plan,
            window,
            carried_won,
        }
    } else {
        IncrementalSchedule {
            order: rescheduled,
            profile: new_prof,
            lifetimes: new_lt,
            plan: new_plan,
            window,
            carried_won,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_graph::algo::{is_topo_order, topo_order};
    use magis_graph::builder::GraphBuilder;
    use magis_graph::op::{OpKind, UnaryKind};
    use magis_graph::tensor::DType;

    fn chain_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(DType::F32);
        let mut cur = b.input([64], "x");
        for _ in 0..n {
            cur = b.relu(cur);
        }
        b.finish()
    }

    #[test]
    fn interval_covers_mutated_nodes() {
        let g = chain_graph(30);
        let psi = topo_order(&g);
        let s: BTreeSet<NodeId> = [psi[10], psi[12]].into_iter().collect();
        let (beg, end) = reschedule_interval(&g, &s, &psi, &IntervalParams::default()).unwrap();
        assert!(beg <= 10 && end >= 13);
        // On a chain every nw is 0: the first extension step already
        // finds the minimum, so the window stays tight.
        assert!(end - beg <= 8, "window stayed small on a chain: {beg}..{end}");
    }

    #[test]
    fn incremental_after_node_insertion() {
        let g_old = chain_graph(20);
        let psi_old = topo_order(&g_old);
        // Mutate: re-materialize node 10's op (add a parallel recompute).
        let mut txn = magis_graph::GraphTxn::begin(&g_old);
        let target = psi_old[10];
        let input = txn.pre(target)[0];
        let clone = txn.add(OpKind::Unary(UnaryKind::Relu), &[input]).unwrap();
        let user = txn.suc(target)[0];
        txn.replace_input(user, target, clone);
        let g_new = txn.commit().0;
        g_new.validate().unwrap();

        let s_old: BTreeSet<NodeId> = [target, user].into_iter().collect();
        let psi_new = incremental_schedule(
            &g_old,
            &g_new,
            &s_old,
            &psi_old,
            &SchedConfig::default(),
            &IntervalParams::default(),
        );
        assert!(is_topo_order(&g_new, &psi_new));
        assert_eq!(psi_new.len(), g_new.len());
    }

    #[test]
    fn incremental_after_node_removal() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64], "x");
        let a = b.relu(x);
        let dup = b.relu(x); // redundant twin to be removed
        let u1 = b.gelu(a);
        let u2 = b.gelu(dup);
        let _j = b.add_op(u1, u2);
        let g_old = b.finish();
        let psi_old = topo_order(&g_old);

        let mut txn = magis_graph::GraphTxn::begin(&g_old);
        txn.redirect_uses(dup, a);
        txn.remove(dup).unwrap();
        let g_new = txn.commit().0;
        let s_old: BTreeSet<NodeId> = [dup, u2].into_iter().collect();
        let psi_new = incremental_schedule(
            &g_old,
            &g_new,
            &s_old,
            &psi_old,
            &SchedConfig::default(),
            &IntervalParams::default(),
        );
        assert!(is_topo_order(&g_new, &psi_new));
    }

    #[test]
    fn no_mutation_is_stable() {
        let g = chain_graph(5);
        let psi = topo_order(&g);
        let out = incremental_schedule(
            &g,
            &g,
            &BTreeSet::new(),
            &psi,
            &SchedConfig::default(),
            &IntervalParams::default(),
        );
        assert_eq!(out, psi);
    }
}
