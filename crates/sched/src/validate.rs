//! Schedule validation: the typed counterpart of [`Graph::validate`]
//! for execution orders.
//!
//! A valid schedule for a graph `G` visits every live node of `G`
//! exactly once, visits nothing else, and respects every data and
//! keepalive dependency (producers strictly before consumers). The
//! hardened optimizer runs this after every accepted incumbent (and,
//! under `--paranoia all`, after every candidate evaluation) so that a
//! corrupted rewrite or a scheduler bug is rejected with a typed error
//! instead of silently poisoning the search frontier.

use magis_graph::GraphView;
use magis_graph::graph::{Graph, NodeId};

/// Why a schedule is invalid for a given graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The order's length differs from the graph's live-node count.
    LengthMismatch {
        /// Live nodes in the graph.
        expected: usize,
        /// Entries in the order.
        got: usize,
    },
    /// The order references a node absent from (or removed from) the graph.
    DeadNode(NodeId),
    /// A node appears more than once in the order.
    DuplicateNode(NodeId),
    /// A live graph node never appears in the order.
    MissingNode(NodeId),
    /// `node` is scheduled before its dependency `dep`.
    DependencyViolation {
        /// The consumer scheduled too early.
        node: NodeId,
        /// The producer (data input or keepalive anchor) it needs first.
        dep: NodeId,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::LengthMismatch { expected, got } => {
                write!(f, "schedule covers {got} nodes but the graph has {expected}")
            }
            ScheduleError::DeadNode(v) => write!(f, "schedule references dead node {v:?}"),
            ScheduleError::DuplicateNode(v) => write!(f, "node {v:?} scheduled more than once"),
            ScheduleError::MissingNode(v) => write!(f, "live node {v:?} never scheduled"),
            ScheduleError::DependencyViolation { node, dep } => {
                write!(f, "node {node:?} scheduled before its dependency {dep:?}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A borrowed execution order with validation attached.
///
/// Thin wrapper so call sites read `Schedule::new(&order).validate(&g)`;
/// [`validate_schedule`] is the equivalent free function.
#[derive(Debug, Clone, Copy)]
pub struct Schedule<'a> {
    order: &'a [NodeId],
}

impl<'a> Schedule<'a> {
    /// Wraps an execution order.
    pub fn new(order: &'a [NodeId]) -> Self {
        Schedule { order }
    }

    /// The wrapped order.
    pub fn order(&self) -> &'a [NodeId] {
        self.order
    }

    /// Checks the order against `g`: every live node exactly once, no
    /// dead nodes, and topological with respect to data inputs *and*
    /// keepalive edges. Returns the first violation found.
    pub fn validate(&self, g: &Graph) -> Result<(), ScheduleError> {
        // Position of each node in the order; also detects duplicates
        // and dead references in one pass.
        let mut pos = vec![usize::MAX; g.capacity()];
        for (i, &v) in self.order.iter().enumerate() {
            if !g.contains(v) {
                return Err(ScheduleError::DeadNode(v));
            }
            let slot = &mut pos[v.index()];
            if *slot != usize::MAX {
                return Err(ScheduleError::DuplicateNode(v));
            }
            *slot = i;
        }
        if self.order.len() != g.len() {
            // With no duplicates and no dead nodes, a length mismatch
            // can only mean too few entries; report a missing node if
            // one is findable, else the raw count mismatch.
            if self.order.len() < g.len() {
                if let Some(v) = g.node_ids().find(|v| pos[v.index()] == usize::MAX) {
                    return Err(ScheduleError::MissingNode(v));
                }
            }
            return Err(ScheduleError::LengthMismatch { expected: g.len(), got: self.order.len() });
        }
        for &v in self.order {
            let at = pos[v.index()];
            let n = g.node(v);
            for &dep in n.inputs().iter().chain(n.keepalive()) {
                if !g.contains(dep) {
                    return Err(ScheduleError::DeadNode(dep));
                }
                if pos[dep.index()] >= at {
                    return Err(ScheduleError::DependencyViolation { node: v, dep });
                }
            }
        }
        Ok(())
    }
}

/// Free-function form of [`Schedule::validate`].
pub fn validate_schedule(g: &Graph, order: &[NodeId]) -> Result<(), ScheduleError> {
    Schedule::new(order).validate(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_schedule;
    use crate::SchedConfig;
    use magis_graph::builder::GraphBuilder;
    use magis_graph::tensor::DType;

    fn diamond() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64, 64], "x");
        let a = b.relu(x);
        let c = b.gelu(x);
        let _ = b.add_op(a, c);
        let g = b.finish();
        let order = full_schedule(&g, &SchedConfig::default());
        (g, order)
    }

    #[test]
    fn valid_schedule_passes() {
        let (g, order) = diamond();
        assert_eq!(validate_schedule(&g, &order), Ok(()));
    }

    #[test]
    fn duplicate_entry_rejected() {
        let (g, mut order) = diamond();
        let last = order.len() - 1;
        order[last] = order[0];
        assert!(matches!(
            validate_schedule(&g, &order),
            Err(ScheduleError::DuplicateNode(_))
        ));
    }

    #[test]
    fn short_order_reports_missing_node() {
        let (g, mut order) = diamond();
        let dropped = order.pop().unwrap();
        assert_eq!(validate_schedule(&g, &order), Err(ScheduleError::MissingNode(dropped)));
    }

    #[test]
    fn producer_after_consumer_rejected() {
        let (g, mut order) = diamond();
        // Move the graph input (always position 0 in a topo order of
        // this graph) to the end: its consumers now precede it.
        let first = order.remove(0);
        order.push(first);
        assert!(matches!(
            validate_schedule(&g, &order),
            Err(ScheduleError::DependencyViolation { .. })
        ));
    }

    #[test]
    fn dead_node_rejected() {
        let (g, mut order) = diamond();
        let last = order.len() - 1;
        order[last] = NodeId::from_index(g.capacity() + 5);
        assert!(matches!(validate_schedule(&g, &order), Err(ScheduleError::DeadNode(_))));
    }

    #[test]
    fn keepalive_edges_are_enforced() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([32], "x");
        let a = b.relu(x);
        let c = b.gelu(x);
        let mut txn = magis_graph::GraphTxn::begin(&b.finish());
        txn.add_keepalive(a, c).unwrap();
        let g = txn.commit().0;
        // a before c satisfies the keepalive; c before a violates it.
        assert_eq!(validate_schedule(&g, &[x, a, c]), Ok(()));
        assert!(matches!(
            validate_schedule(&g, &[x, c, a]),
            Err(ScheduleError::DependencyViolation { .. })
        ));
    }
}
