//! Narrow-waist graph partitioning (`GraphPartition` of Algorithm 2).
//!
//! Nodes with `nw(v) ≤ 1` are near-articulation points of the
//! scheduling problem: almost every other node is ordered relative to
//! them, so cutting the window there splits it into pieces that can be
//! scheduled independently with bounded loss (§6.1 of the paper).

use magis_graph::GraphView;
use magis_graph::algo::reach::Reachability;
use magis_graph::algo::topo::topo_order_of;
use magis_graph::algo::weakly_connected_components;
use magis_graph::graph::{Graph, NodeId};
use std::collections::BTreeSet;

/// Maximum narrow-waist value at which a node still qualifies as a cut
/// point (the paper uses `nw(v) ≤ 1`).
pub const CUT_NW: usize = 1;

/// Partitions `set` into independently schedulable pieces.
///
/// Each weakly connected component is ordered topologically and cut
/// after every node whose narrow-waist value *within the component* is
/// at most [`CUT_NW`]. Pieces are returned in a valid execution order
/// (concatenating their schedules yields a topological order of `set`).
pub fn partition(g: &Graph, set: &BTreeSet<NodeId>) -> Vec<Vec<NodeId>> {
    let mut pieces = Vec::new();
    for comp in weakly_connected_components(g, set) {
        let order = topo_order_of(g, &comp);
        if comp.len() <= 2 {
            pieces.push(order);
            continue;
        }
        // Narrow-waist values restricted to the component: build a
        // component-local reachability by counting anc/des inside it.
        let nw = component_narrow_waists(g, &order);
        let mut cur = Vec::new();
        for (i, &v) in order.iter().enumerate() {
            cur.push(v);
            let last = i + 1 == order.len();
            if !last && nw[i] <= CUT_NW && cur.len() > 1 {
                pieces.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            pieces.push(cur);
        }
    }
    pieces
}

/// Narrow-waist value of every node of the component (aligned with
/// `order`), counting only ancestors/descendants inside it.
fn component_narrow_waists(g: &Graph, order: &[NodeId]) -> Vec<usize> {
    let n = order.len();
    // Dense slot→position table: doubles as the membership test, so
    // the bitset merges below walk raw neighbour slices directly.
    let mut pos = vec![usize::MAX; g.capacity()];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    let words = n.div_ceil(64);
    let mut anc = vec![vec![0u64; words]; n];
    let mut des = vec![vec![0u64; words]; n];
    for (i, &v) in order.iter().enumerate() {
        let node = g.node(v);
        for &p in node.inputs().iter().chain(node.keepalive()) {
            let pi = pos[p.index()];
            if pi == usize::MAX {
                continue;
            }
            let (head, tail) = anc.split_at_mut(i);
            for (w, pw) in tail[0].iter_mut().zip(head[pi].iter()) {
                *w |= pw;
            }
            anc[i][pi / 64] |= 1 << (pi % 64);
        }
    }
    for (i, &v) in order.iter().enumerate().rev() {
        for &s in g.node(v).succs() {
            let si = pos[s.index()];
            if si == usize::MAX {
                continue;
            }
            let (head, tail) = des.split_at_mut(si);
            for (w, sw) in head[i].iter_mut().zip(tail[0].iter()) {
                *w |= sw;
            }
            des[i][si / 64] |= 1 << (si % 64);
        }
    }
    (0..n)
        .map(|i| {
            let a: usize = anc[i].iter().map(|w| w.count_ones() as usize).sum();
            let d: usize = des[i].iter().map(|w| w.count_ones() as usize).sum();
            n - a - d - 1
        })
        .collect()
}

/// Narrow-waist values over the whole graph via [`Reachability`]
/// (used by `GetRescheduleInterval` in Algorithm 2).
pub fn narrow_waists(g: &Graph) -> (Reachability, Vec<usize>) {
    let r = Reachability::compute(g);
    let mut nw = vec![0usize; g.capacity()];
    for v in g.node_ids() {
        nw[v.index()] = r.narrow_waist(v);
    }
    (r, nw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_graph::builder::GraphBuilder;
    use magis_graph::tensor::DType;

    #[test]
    fn chain_splits_at_every_node() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64], "x");
        let mut cur = x;
        for _ in 0..5 {
            cur = b.relu(cur);
        }
        let g = b.finish();
        let set: BTreeSet<NodeId> = g.node_ids().collect();
        let pieces = partition(&g, &set);
        // Every node of a chain has nw = 0: pieces of size ≤ 2.
        assert!(pieces.len() >= 3);
        let total: usize = pieces.iter().map(Vec::len).sum();
        assert_eq!(total, g.len());
        // Concatenation is a topological order.
        let cat: Vec<NodeId> = pieces.into_iter().flatten().collect();
        assert!(magis_graph::algo::is_topo_order(&g, &cat));
    }

    #[test]
    fn diamond_cuts_still_compose_validly() {
        // In a 5-node diamond + tail, the branch nodes have nw = 1
        // (each is independent of exactly one node), so the paper's
        // nw ≤ 1 rule may cut between them — the at-most-one-node
        // displacement the heuristic tolerates. What must hold: all
        // nodes covered exactly once and the concatenation is a valid
        // topological order.
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64], "x");
        let a = b.relu(x);
        let c = b.gelu(x);
        let j = b.add_op(a, c);
        let _t = b.relu(j);
        let g = b.finish();
        let set: BTreeSet<NodeId> = g.node_ids().collect();
        let pieces = partition(&g, &set);
        let cat: Vec<NodeId> = pieces.iter().flatten().copied().collect();
        assert_eq!(cat.len(), g.len());
        assert!(magis_graph::algo::is_topo_order(&g, &cat));
    }

    #[test]
    fn wide_fanout_kept_whole() {
        // With 4 parallel branches every interior node has nw = 3 > 1:
        // the fan must stay in a single piece.
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64], "x");
        let branches: Vec<NodeId> = (0..4).map(|_| b.relu(x)).collect();
        let mut acc = branches[0];
        for &p in &branches[1..] {
            acc = b.add_op(acc, p);
        }
        // `acc` chain nodes also have nw > 1 until the last one.
        let g = b.finish();
        let set: BTreeSet<NodeId> = g.node_ids().collect();
        let pieces = partition(&g, &set);
        let piece = pieces.iter().find(|p| p.contains(&branches[0])).unwrap();
        for br in &branches[1..] {
            assert!(piece.contains(br), "parallel branches stay together");
        }
    }

    #[test]
    fn separate_components_separate_pieces() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64], "x");
        let _a = b.relu(x);
        let y = b.input([64], "y");
        let _c = b.relu(y);
        let g = b.finish();
        let set: BTreeSet<NodeId> = g.node_ids().collect();
        let pieces = partition(&g, &set);
        assert_eq!(pieces.len(), 2);
    }
}
