//! Memory-optimal topological ordering via dynamic programming over
//! executed-set states (the `DpSchedule` of Algorithm 2, following the
//! Serenity-style DP of Ahn et al., MLSys'20), with a beam cap so large
//! windows degrade gracefully to memory-aware list scheduling.
//!
//! States are keyed by the *set* of executed nodes: any two partial
//! schedules covering the same set leave identical residual problems
//! and identical live memory, so only the one with the lower peak needs
//! to survive — that is the DP. When the number of states at a level
//! exceeds the beam width, the worst states are dropped (quality knob
//! D6 in DESIGN.md).

use crate::task::SchedTask;
use std::collections::BTreeMap;

/// Tuning for the DP/beam scheduler.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Maximum states kept per level. Width 1 is greedy list
    /// scheduling; large widths approach exact DP.
    pub beam_width: usize,
    /// Above this window size the effective width shrinks
    /// proportionally to bound work (`width · budget / n`).
    pub node_budget: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig { beam_width: 64, node_budget: 128 }
    }
}

impl SchedConfig {
    /// Effective beam width for a window of `n` nodes.
    pub fn effective_width(&self, n: usize) -> usize {
        if n <= self.node_budget {
            self.beam_width
        } else {
            (self.beam_width * self.node_budget / n).max(1)
        }
    }
}

#[derive(Clone)]
struct State {
    executed: Vec<u64>,
    order: Vec<u32>,
    mem: u64,
    peak: u64,
    indeg: Vec<u16>,
}

impl State {
    fn contains(&self, i: usize) -> bool {
        (self.executed[i / 64] >> (i % 64)) & 1 == 1
    }
    fn insert(&mut self, i: usize) {
        self.executed[i / 64] |= 1 << (i % 64);
    }
}

/// Result of [`dp_schedule`].
#[derive(Debug, Clone)]
pub struct DpResult {
    /// Window schedule in local indices.
    pub order: Vec<usize>,
    /// Peak bytes within the window (including the window base).
    pub peak: u64,
    /// Number of DP states expanded (search effort metric).
    pub states_expanded: usize,
}

/// Schedules a window to minimize peak memory.
///
/// Returns a topological order of the window's local indices together
/// with the achieved peak (window-local, including boundary `base`).
pub fn dp_schedule(task: &SchedTask<'_>, cfg: &SchedConfig) -> DpResult {
    let n = task.len();
    if n == 0 {
        return DpResult { order: Vec::new(), peak: task.base, states_expanded: 0 };
    }
    let start = std::time::Instant::now();
    let mut span = magis_obs::span!("magis_sched", "dp_schedule", window = n);
    let width = cfg.effective_width(n);
    let words = n.div_ceil(64);
    let indeg0: Vec<u16> = task.preds.iter().map(|p| p.len() as u16).collect();
    let init = State {
        executed: vec![0; words],
        order: Vec::new(),
        mem: task.base,
        peak: task.base,
        indeg: indeg0,
    };
    let mut level: Vec<State> = vec![init];
    let mut expanded = 0usize;
    for _ in 0..n {
        // Keyed by the executed bitset. A BTreeMap (not HashMap) so
        // that level iteration order — and therefore beam truncation
        // and final tie-breaks among equal-(peak, mem) states — is
        // deterministic across runs, processes, and thread counts.
        let mut next: BTreeMap<Vec<u64>, State> = BTreeMap::new();
        for st in &level {
            for v in 0..n {
                if st.indeg[v] != 0 || st.contains(v) {
                    continue;
                }
                expanded += 1;
                let mut ns = st.clone();
                ns.insert(v);
                ns.order.push(v as u32);
                for &ri in &task.allocs[v] {
                    ns.mem += task.roots[ri].bytes;
                }
                ns.peak = ns.peak.max(ns.mem);
                // Free roots whose final user just executed.
                for &ri in &task.uses[v] {
                    let r = &task.roots[ri];
                    if r.freeable && r.users.iter().all(|&u| ns.contains(u)) {
                        ns.mem -= r.bytes;
                    }
                }
                // A freeable root with no window users (write-only) frees
                // immediately after its own execution completes... such
                // roots have users == [] but freeable == false (terminal)
                // so nothing to do here.
                for &s in &task.succs[v] {
                    ns.indeg[s] -= 1;
                }
                match next.get_mut(&ns.executed) {
                    Some(prev) => {
                        if (ns.peak, ns.mem) < (prev.peak, prev.mem) {
                            *prev = ns;
                        }
                    }
                    None => {
                        next.insert(ns.executed.clone(), ns);
                    }
                }
            }
        }
        let mut states: Vec<State> = next.into_values().collect();
        if states.len() > width {
            states.sort_by_key(|s| (s.peak, s.mem));
            states.truncate(width);
        }
        debug_assert!(!states.is_empty(), "DAG window must always have a ready node");
        level = states;
    }
    let best = level
        .into_iter()
        .min_by_key(|s| (s.peak, s.mem))
        .expect("at least one complete schedule");
    span.record("states_expanded", expanded);
    span.record("peak_bytes", best.peak);
    {
        use std::sync::OnceLock;
        struct DpObs {
            runs: magis_obs::metrics::Counter,
            states: magis_obs::metrics::Counter,
            seconds: magis_obs::metrics::Histogram,
        }
        static OBS: OnceLock<DpObs> = OnceLock::new();
        let obs = OBS.get_or_init(|| DpObs {
            runs: magis_obs::metrics::counter("magis_sched_dp_runs"),
            states: magis_obs::metrics::counter("magis_sched_dp_states_expanded"),
            seconds: magis_obs::metrics::histogram("magis_sched_dp_seconds"),
        });
        obs.runs.inc();
        obs.states.add(expanded as u64);
        obs.seconds.observe_duration(start.elapsed());
    }
    DpResult {
        order: best.order.into_iter().map(|x| x as usize).collect(),
        peak: best.peak,
        states_expanded: expanded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_graph::algo::is_topo_order;
    use magis_graph::builder::GraphBuilder;
    use magis_graph::tensor::DType;
    use magis_sim::memory::memory_profile;

    /// Two parallel chains from one input: a long heavy chain and a
    /// short light one joining at the end. Greedy program order (heavy
    /// first then light) holds the heavy result while running the light
    /// chain; the optimal order interleaves to keep fewer live tensors.
    #[test]
    fn dp_beats_naive_order_on_fanout() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([1024], "x"); // 4 KiB
        // Wide fan-out: many independent consumers of x, each producing
        // a big tensor, all summed pairwise at the end. Naive order
        // computes all producers first (peak ~ k tensors); optimal
        // interleaves adds to free early.
        let k = 6;
        let mut prods = Vec::new();
        for _ in 0..k {
            prods.push(b.relu(x));
        }
        let mut acc = prods[0];
        for &p in &prods[1..] {
            acc = b.add_op(acc, p);
        }
        let g = b.finish();
        let task = SchedTask::whole_graph(&g);
        let naive = task.default_order();
        let naive_ids = task.to_node_ids(&naive);
        let naive_peak = memory_profile(&g, &naive_ids).peak_bytes;
        let res = dp_schedule(&task, &SchedConfig::default());
        let ids = task.to_node_ids(&res.order);
        assert!(is_topo_order(&g, &ids));
        let dp_peak = memory_profile(&g, &ids).peak_bytes;
        assert!(
            dp_peak < naive_peak,
            "dp {dp_peak} should beat naive {naive_peak}"
        );
        // DP's internal accounting must agree with the memory profiler.
        assert_eq!(dp_peak, res.peak);
    }

    #[test]
    fn beam_width_one_is_still_valid() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64], "x");
        let a = b.relu(x);
        let c = b.gelu(x);
        let _ = b.add_op(a, c);
        let g = b.finish();
        let task = SchedTask::whole_graph(&g);
        let cfg = SchedConfig { beam_width: 1, node_budget: 128 };
        let res = dp_schedule(&task, &cfg);
        let ids = task.to_node_ids(&res.order);
        assert!(is_topo_order(&g, &ids));
    }

    #[test]
    fn effective_width_shrinks() {
        let cfg = SchedConfig { beam_width: 64, node_budget: 128 };
        assert_eq!(cfg.effective_width(100), 64);
        assert_eq!(cfg.effective_width(256), 32);
        assert!(cfg.effective_width(100_000) >= 1);
    }

    #[test]
    fn empty_window() {
        let g = magis_graph::Graph::new();
        let task = SchedTask::whole_graph(&g);
        let res = dp_schedule(&task, &SchedConfig::default());
        assert!(res.order.is_empty());
    }

    #[test]
    fn dp_matches_profiler_on_random_small_graphs() {
        use magis_util::rng::{Rng, SeedableRng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut b = GraphBuilder::new(DType::F32);
            let x = b.input([rng.gen_range(64..512)], "x");
            let mut pool = vec![x];
            for _ in 0..rng.gen_range(3..10) {
                let pick = pool[rng.gen_range(0..pool.len())];
                let v = if rng.gen_bool(0.5) { b.relu(pick) } else { b.gelu(pick) };
                pool.push(v);
            }
            let g = b.finish();
            let task = SchedTask::whole_graph(&g);
            let res = dp_schedule(&task, &SchedConfig::default());
            let ids = task.to_node_ids(&res.order);
            assert!(is_topo_order(&g, &ids));
            assert_eq!(memory_profile(&g, &ids).peak_bytes, res.peak);
        }
    }
}
