//! Memory-optimal topological ordering via dynamic programming over
//! executed-set states (the `DpSchedule` of Algorithm 2, following the
//! Serenity-style DP of Ahn et al., MLSys'20), with a beam cap so large
//! windows degrade gracefully to memory-aware list scheduling.
//!
//! States are keyed by the *set* of executed nodes: any two partial
//! schedules covering the same set leave identical residual problems
//! and identical live memory, so only the one with the lower peak needs
//! to survive — that is the DP. When the number of states at a level
//! exceeds the beam width, the worst states are dropped (quality knob
//! D6 in DESIGN.md).

use crate::task::SchedTask;
use std::collections::BTreeMap;

/// Tuning for the DP/beam scheduler.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Maximum states kept per level. Width 1 is greedy list
    /// scheduling; large widths approach exact DP.
    pub beam_width: usize,
    /// Above this window size the effective width shrinks
    /// proportionally to bound work (`width · budget / n`).
    pub node_budget: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig { beam_width: 64, node_budget: 128 }
    }
}

impl SchedConfig {
    /// Effective beam width for a window of `n` nodes.
    pub fn effective_width(&self, n: usize) -> usize {
        if n <= self.node_budget {
            self.beam_width
        } else {
            (self.beam_width * self.node_budget / n).max(1)
        }
    }
}

/// A surviving DP state: its executed-set key plus running memory
/// figures. The schedule itself is *not* stored per state — each state
/// records only the arena index of its `(parent, last-node)` link, and
/// the winning order is reconstructed by walking parents at the end.
/// This keeps a transition O(degree) instead of O(window).
struct LevelState {
    executed: Vec<u64>,
    mem: u64,
    peak: u64,
    /// Index into the parent-link arena (`u32::MAX` for the root).
    link: u32,
}

/// Candidate value inside a level's dedup map, before truncation.
struct Cand {
    peak: u64,
    mem: u64,
    parent: u32,
    last: u32,
}

#[inline]
fn bit(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// Result of [`dp_schedule`].
#[derive(Debug, Clone)]
pub struct DpResult {
    /// Window schedule in local indices.
    pub order: Vec<usize>,
    /// Peak bytes within the window (including the window base).
    pub peak: u64,
    /// Number of DP states expanded (search effort metric).
    pub states_expanded: usize,
}

/// Schedules a window to minimize peak memory.
///
/// Returns a topological order of the window's local indices together
/// with the achieved peak (window-local, including boundary `base`).
pub fn dp_schedule(task: &SchedTask<'_>, cfg: &SchedConfig) -> DpResult {
    let n = task.len();
    if n == 0 {
        return DpResult { order: Vec::new(), peak: task.base, states_expanded: 0 };
    }
    let start = std::time::Instant::now();
    let mut span = magis_obs::span!("magis_sched", "dp_schedule", window = n);
    let width = cfg.effective_width(n);
    // Windows of ≤256 nodes — every incremental reschedule and most
    // whole-model windows at bench scale — run on fixed-width bitset
    // fast paths whose keys live on the stack; larger windows fall back
    // to word-vector keys below.
    let fixed = match n {
        0..=64 => Some(dp_fixed::<1>(task, width)),
        65..=128 => Some(dp_fixed::<2>(task, width)),
        129..=192 => Some(dp_fixed::<3>(task, width)),
        193..=256 => Some(dp_fixed::<4>(task, width)),
        _ => None,
    };
    if let Some((order, peak, expanded)) = fixed {
        span.record("states_expanded", expanded);
        span.record("peak_bytes", peak);
        record_obs(expanded, start);
        return DpResult { order, peak, states_expanded: expanded };
    }
    let words = n.div_ceil(64);
    // Parent-link arena: one `(parent, last)` entry per state that
    // survives a level's truncation.
    let mut arena: Vec<(u32, u32)> = Vec::new();
    let mut level: Vec<LevelState> =
        vec![LevelState { executed: vec![0; words], mem: task.base, peak: task.base, link: u32::MAX }];
    let mut scratch = vec![0u64; words];
    let mut expanded = 0usize;
    for _ in 0..n {
        // Keyed by the executed bitset. A BTreeMap (not HashMap) so
        // that level iteration order — and therefore beam truncation
        // and final tie-breaks among equal-(peak, mem) states — is
        // deterministic across runs, processes, and thread counts.
        let mut next: BTreeMap<Vec<u64>, Cand> = BTreeMap::new();
        for st in &level {
            for v in 0..n {
                if bit(&st.executed, v)
                    || !task.preds[v].iter().all(|&p| bit(&st.executed, p))
                {
                    continue;
                }
                expanded += 1;
                // Probe with a scratch key: the key Vec is only cloned
                // when the state is genuinely new.
                scratch.copy_from_slice(&st.executed);
                scratch[v / 64] |= 1 << (v % 64);
                let mut mem = st.mem;
                for &ri in &task.allocs[v] {
                    mem += task.roots[ri].bytes;
                }
                let peak = st.peak.max(mem);
                // Free roots whose final user just executed.
                for &ri in &task.uses[v] {
                    let r = &task.roots[ri];
                    if r.freeable && r.users.iter().all(|&u| bit(&scratch, u)) {
                        mem -= r.bytes;
                    }
                }
                match next.get_mut(&scratch[..]) {
                    Some(prev) => {
                        if (peak, mem) < (prev.peak, prev.mem) {
                            *prev = Cand { peak, mem, parent: st.link, last: v as u32 };
                        }
                    }
                    None => {
                        next.insert(
                            scratch.clone(),
                            Cand { peak, mem, parent: st.link, last: v as u32 },
                        );
                    }
                }
            }
        }
        let mut states: Vec<(Vec<u64>, Cand)> = next.into_iter().collect();
        if states.len() > width {
            states.sort_by_key(|(_, c)| (c.peak, c.mem));
            states.truncate(width);
        }
        debug_assert!(!states.is_empty(), "DAG window must always have a ready node");
        level = states
            .into_iter()
            .map(|(executed, c)| {
                let link = arena.len() as u32;
                arena.push((c.parent, c.last));
                LevelState { executed, mem: c.mem, peak: c.peak, link }
            })
            .collect();
    }
    let best = level
        .iter()
        .min_by_key(|s| (s.peak, s.mem))
        .expect("at least one complete schedule");
    // Reconstruct the winning order by walking the parent chain.
    let mut order = Vec::with_capacity(n);
    let mut cur = best.link;
    while cur != u32::MAX {
        let (parent, last) = arena[cur as usize];
        order.push(last as usize);
        cur = parent;
    }
    order.reverse();
    span.record("states_expanded", expanded);
    span.record("peak_bytes", best.peak);
    record_obs(expanded, start);
    DpResult { order, peak: best.peak, states_expanded: expanded }
}

fn record_obs(expanded: usize, start: std::time::Instant) {
    use std::sync::OnceLock;
    struct DpObs {
        runs: magis_obs::metrics::Counter,
        states: magis_obs::metrics::Counter,
        seconds: magis_obs::metrics::Histogram,
    }
    static OBS: OnceLock<DpObs> = OnceLock::new();
    let obs = OBS.get_or_init(|| DpObs {
        runs: magis_obs::metrics::counter("magis_sched_dp_runs"),
        states: magis_obs::metrics::counter("magis_sched_dp_states_expanded"),
        seconds: magis_obs::metrics::histogram("magis_sched_dp_seconds"),
    });
    obs.runs.inc();
    obs.states.add(expanded as u64);
    obs.seconds.observe_duration(start.elapsed());
}

/// A stack-allocated executed-set key of `W` 64-bit words with the
/// same bit layout as the general path's word vectors (bit `i` lives
/// in word `i / 64`). The derived lexicographic `Ord` over the array
/// therefore equals the `BTreeMap<Vec<u64>, _>` key order, so
/// truncation and tie-breaks visit states in the same order on both
/// paths.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key<const W: usize>([u64; W]);

impl<const W: usize> Key<W> {
    const ZERO: Key<W> = Key([0; W]);

    #[inline]
    fn with_bit(mut self, i: usize) -> Self {
        self.0[i / 64] |= 1 << (i % 64);
        self
    }

    #[inline]
    fn or(mut self, other: &Key<W>) -> Self {
        for w in 0..W {
            self.0[w] |= other.0[w];
        }
        self
    }

    #[inline]
    fn clear_bit(mut self, i: usize) -> Self {
        self.0[i / 64] &= !(1 << (i % 64));
        self
    }

    /// Whether every bit of `other` is set in `self`.
    #[inline]
    fn contains(&self, other: &Key<W>) -> bool {
        (0..W).all(|w| self.0[w] & other.0[w] == other.0[w])
    }
}

/// Fast path of [`dp_schedule`] for windows of up to `64·W` nodes: the
/// executed-set key is a fixed word array, readiness and root-freeing
/// become mask tests, and level dedup never heap-allocates a key.
/// Transition rule, truncation, and every tie-break are identical to
/// the general path.
fn dp_fixed<const W: usize>(task: &SchedTask<'_>, width: usize) -> (Vec<usize>, u64, usize) {
    let n = task.len();
    debug_assert!(n <= 64 * W);
    let node_mask: Vec<Key<W>> = (0..n).map(|i| Key::ZERO.with_bit(i)).collect();
    let pred_mask: Vec<Key<W>> = (0..n)
        .map(|v| task.preds[v].iter().fold(Key::ZERO, |m, &p| m.with_bit(p)))
        .collect();
    let root_users: Vec<Key<W>> = task
        .roots
        .iter()
        .map(|r| r.users.iter().fold(Key::ZERO, |m, &u| m.with_bit(u)))
        .collect();
    struct FixedState<const W: usize> {
        executed: Key<W>,
        /// Nodes whose predecessors are all executed, not yet run.
        /// Pure function of `executed`, carried incrementally so a
        /// transition costs O(out-degree) instead of an O(n) scan.
        ready: Key<W>,
        mem: u64,
        peak: u64,
        link: u32,
    }
    struct FixedCand<const W: usize> {
        ready: Key<W>,
        peak: u64,
        mem: u64,
        parent: u32,
        last: u32,
    }
    let ready0 = (0..n)
        .filter(|&v| pred_mask[v] == Key::ZERO)
        .fold(Key::ZERO, |m: Key<W>, v| m.with_bit(v));
    let mut arena: Vec<(u32, u32)> = Vec::new();
    let mut level = vec![FixedState {
        executed: Key::ZERO,
        ready: ready0,
        mem: task.base,
        peak: task.base,
        link: u32::MAX,
    }];
    let mut expanded = 0usize;
    let mut trans: Vec<(Key<W>, FixedCand<W>)> = Vec::new();
    for _ in 0..n {
        // Collect every transition flat, then dedup by a stable sort
        // on the key: cheaper than a keyed map, with the identical
        // outcome — ascending-key order, and among transitions to the
        // same executed set the first-generated one wins (peak, mem)
        // ties, exactly the map's insert-then-strict-less rule.
        trans.clear();
        for st in &level {
            // Iterate ready bits in ascending node order (natural
            // packing: low words, low bits first).
            for w in 0..W {
                let mut bits = st.ready.0[w];
                while bits != 0 {
                    let v = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    expanded += 1;
                    let key = st.executed.with_bit(v);
                    let mut ready = st.ready.clear_bit(v);
                    for &s in &task.succs[v] {
                        if key.contains(&pred_mask[s]) {
                            ready = ready.or(&node_mask[s]);
                        }
                    }
                    let mut mem = st.mem;
                    for &ri in &task.allocs[v] {
                        mem += task.roots[ri].bytes;
                    }
                    let peak = st.peak.max(mem);
                    for &ri in &task.uses[v] {
                        let r = &task.roots[ri];
                        if r.freeable && key.contains(&root_users[ri]) {
                            mem -= r.bytes;
                        }
                    }
                    trans.push((
                        key,
                        FixedCand { ready, peak, mem, parent: st.link, last: v as u32 },
                    ));
                }
            }
        }
        trans.sort_by_key(|&(key, _)| key);
        let mut states: Vec<(Key<W>, FixedCand<W>)> = Vec::with_capacity(trans.len());
        for (key, c) in trans.drain(..) {
            match states.last_mut() {
                Some((k, best)) if *k == key => {
                    if (c.peak, c.mem) < (best.peak, best.mem) {
                        *best = c;
                    }
                }
                _ => states.push((key, c)),
            }
        }
        if states.len() > width {
            states.sort_by_key(|(_, c)| (c.peak, c.mem));
            states.truncate(width);
        }
        debug_assert!(!states.is_empty(), "DAG window must always have a ready node");
        level = states
            .into_iter()
            .map(|(executed, c)| {
                let link = arena.len() as u32;
                arena.push((c.parent, c.last));
                FixedState { executed, ready: c.ready, mem: c.mem, peak: c.peak, link }
            })
            .collect();
    }
    let best = level
        .iter()
        .min_by_key(|s| (s.peak, s.mem))
        .expect("at least one complete schedule");
    let mut order = Vec::with_capacity(n);
    let mut cur = best.link;
    while cur != u32::MAX {
        let (parent, last) = arena[cur as usize];
        order.push(last as usize);
        cur = parent;
    }
    order.reverse();
    (order, best.peak, expanded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magis_graph::algo::is_topo_order;
    use magis_graph::builder::GraphBuilder;
    use magis_graph::tensor::DType;
    use magis_sim::memory::memory_profile;

    /// Two parallel chains from one input: a long heavy chain and a
    /// short light one joining at the end. Greedy program order (heavy
    /// first then light) holds the heavy result while running the light
    /// chain; the optimal order interleaves to keep fewer live tensors.
    #[test]
    fn dp_beats_naive_order_on_fanout() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([1024], "x"); // 4 KiB
        // Wide fan-out: many independent consumers of x, each producing
        // a big tensor, all summed pairwise at the end. Naive order
        // computes all producers first (peak ~ k tensors); optimal
        // interleaves adds to free early.
        let k = 6;
        let mut prods = Vec::new();
        for _ in 0..k {
            prods.push(b.relu(x));
        }
        let mut acc = prods[0];
        for &p in &prods[1..] {
            acc = b.add_op(acc, p);
        }
        let g = b.finish();
        let task = SchedTask::whole_graph(&g);
        let naive = task.default_order();
        let naive_ids = task.to_node_ids(&naive);
        let naive_peak = memory_profile(&g, &naive_ids).peak_bytes;
        let res = dp_schedule(&task, &SchedConfig::default());
        let ids = task.to_node_ids(&res.order);
        assert!(is_topo_order(&g, &ids));
        let dp_peak = memory_profile(&g, &ids).peak_bytes;
        assert!(
            dp_peak < naive_peak,
            "dp {dp_peak} should beat naive {naive_peak}"
        );
        // DP's internal accounting must agree with the memory profiler.
        assert_eq!(dp_peak, res.peak);
    }

    #[test]
    fn beam_width_one_is_still_valid() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input([64], "x");
        let a = b.relu(x);
        let c = b.gelu(x);
        let _ = b.add_op(a, c);
        let g = b.finish();
        let task = SchedTask::whole_graph(&g);
        let cfg = SchedConfig { beam_width: 1, node_budget: 128 };
        let res = dp_schedule(&task, &cfg);
        let ids = task.to_node_ids(&res.order);
        assert!(is_topo_order(&g, &ids));
    }

    #[test]
    fn effective_width_shrinks() {
        let cfg = SchedConfig { beam_width: 64, node_budget: 128 };
        assert_eq!(cfg.effective_width(100), 64);
        assert_eq!(cfg.effective_width(256), 32);
        assert!(cfg.effective_width(100_000) >= 1);
    }

    #[test]
    fn empty_window() {
        let g = magis_graph::Graph::new();
        let task = SchedTask::whole_graph(&g);
        let res = dp_schedule(&task, &SchedConfig::default());
        assert!(res.order.is_empty());
    }

    #[test]
    fn dp_matches_profiler_on_random_small_graphs() {
        use magis_util::rng::{Rng, SeedableRng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut b = GraphBuilder::new(DType::F32);
            let x = b.input([rng.gen_range(64..512)], "x");
            let mut pool = vec![x];
            for _ in 0..rng.gen_range(3..10) {
                let pick = pool[rng.gen_range(0..pool.len())];
                let v = if rng.gen_bool(0.5) { b.relu(pick) } else { b.gelu(pick) };
                pool.push(v);
            }
            let g = b.finish();
            let task = SchedTask::whole_graph(&g);
            let res = dp_schedule(&task, &SchedConfig::default());
            let ids = task.to_node_ids(&res.order);
            assert!(is_topo_order(&g, &ids));
            assert_eq!(memory_profile(&g, &ids).peak_bytes, res.peak);
        }
    }
}
