//! Property coverage for incremental rescheduling (Algorithm 2):
//! random NASNet-like graphs, random mutations, and the two contracts
//! the optimizer relies on —
//!
//! 1. the merged order is always a valid topological order of the new
//!    graph, and
//! 2. the windowed re-ordering's peak memory stays within a small
//!    factor of rerunning the full scheduler from scratch.

use magis_graph::GraphView;
use magis_graph::algo::{is_topo_order, topo_order};
use magis_graph::graph::{Graph, NodeId};
use magis_models::{random_dnn, RandomDnnConfig};
use magis_sched::{
    full_schedule, incremental_schedule, reschedule_interval, IntervalParams, SchedConfig,
};
use magis_sim::memory_profile;
use magis_util::prop::prelude::*;
use std::collections::BTreeSet;

fn small_dnn(seed: u64) -> Graph {
    let cfg = RandomDnnConfig { batch: 2, channels: 8, hw: 8, cells: 2, blocks: 3 };
    random_dnn(&cfg, seed)
}

/// A re-materialization-shaped mutation: clone a random interior node
/// (same op, same inputs) and route one of its users through the
/// clone. Returns the new graph plus the old-graph nodes touched.
fn remat_mutation(g: &Graph, pick: usize) -> Option<(Graph, BTreeSet<NodeId>)> {
    let cands: Vec<NodeId> = g
        .node_ids()
        .filter(|&v| !g.pre(v).is_empty() && !g.suc(v).is_empty())
        .collect();
    let v = *cands.get(pick % cands.len())?;
    let mut txn = magis_graph::GraphTxn::begin(g);
    let inputs = g.node(v).inputs().to_vec();
    let clone = txn.add(g.node(v).op.clone(), &inputs).ok()?;
    let user = g.suc(v)[0];
    txn.replace_input(user, v, clone);
    let g_new = txn.commit().0;
    g_new.validate().ok()?;
    Some((g_new, [v, user].into_iter().collect()))
}

proptest! {
    // Each case runs the scheduler on a real (small) DNN; keep the
    // count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn interval_covers_all_mutated_nodes(seed in 0u64..1000, a in 0usize..4096, b in 0usize..4096) {
        let g = small_dnn(seed);
        let psi = topo_order(&g);
        let s: BTreeSet<NodeId> =
            [psi[a % psi.len()], psi[b % psi.len()]].into_iter().collect();
        let (beg, end) =
            reschedule_interval(&g, &s, &psi, &IntervalParams::default()).unwrap();
        prop_assert!(beg < end && end <= psi.len());
        for (i, v) in psi.iter().enumerate() {
            if s.contains(v) {
                prop_assert!(
                    beg <= i && i < end,
                    "mutated node at index {i} outside window {beg}..{end}"
                );
            }
        }
    }

    #[test]
    fn merged_order_is_topo_and_peak_competitive(seed in 0u64..1000, pick in 0usize..4096) {
        let g_old = small_dnn(seed);
        let cfg = SchedConfig::default();
        let psi_old = full_schedule(&g_old, &cfg);
        let mutation = remat_mutation(&g_old, pick);
        prop_assume!(mutation.is_some());
        let (g_new, s_old) = mutation.unwrap();

        let psi_new = incremental_schedule(
            &g_old, &g_new, &s_old, &psi_old, &cfg, &IntervalParams::default(),
        );
        prop_assert!(is_topo_order(&g_new, &psi_new), "merged order is a valid topo order");
        prop_assert_eq!(psi_new.len(), g_new.len());

        let inc_peak = memory_profile(&g_new, &psi_new).peak_bytes;
        let full_peak =
            memory_profile(&g_new, &full_schedule(&g_new, &cfg)).peak_bytes;
        prop_assert!(
            inc_peak as f64 <= full_peak as f64 * 1.25,
            "windowed peak {inc_peak} within 1.25x of full rerun {full_peak}"
        );
    }

    #[test]
    fn reorder_without_mutation_never_hurts(seed in 0u64..1000, a in 0usize..4096, b in 0usize..4096) {
        // With an unchanged graph, rescheduling a window around two
        // arbitrary "touched" nodes must return a valid order that is
        // never worse than carrying the old schedule over (the merge
        // keeps the better of the two by construction — this pins that
        // contract down).
        let g = small_dnn(seed);
        let cfg = SchedConfig::default();
        let psi_old = full_schedule(&g, &cfg);
        let s: BTreeSet<NodeId> =
            [psi_old[a % psi_old.len()], psi_old[b % psi_old.len()]].into_iter().collect();
        let psi_new =
            incremental_schedule(&g, &g, &s, &psi_old, &cfg, &IntervalParams::default());
        prop_assert!(is_topo_order(&g, &psi_new));
        let new_peak = memory_profile(&g, &psi_new).peak_bytes;
        let old_peak = memory_profile(&g, &psi_old).peak_bytes;
        prop_assert!(
            new_peak <= old_peak,
            "rescheduling never hurts: {new_peak} vs {old_peak}"
        );
    }
}
