//! Edge cases of the scheduling stack: degenerate windows, anchored
//! allocations, boundary tensors, and keepalive ordering.

use magis_graph::builder::GraphBuilder;
use magis_graph::graph::NodeId;
use magis_graph::op::MergeKind;
use magis_graph::tensor::DType;
use magis_sched::{dp_schedule, full_schedule, SchedConfig, SchedTask};
use magis_sim::memory_profile;
use std::collections::BTreeSet;

#[test]
fn single_node_window() {
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([4], "x");
    let a = b.relu(x);
    let g = b.finish();
    let set: BTreeSet<NodeId> = [a].into_iter().collect();
    let task = SchedTask::subset(&g, &set);
    let res = dp_schedule(&task, &SchedConfig::default());
    assert_eq!(task.to_node_ids(&res.order), vec![a]);
}

#[test]
fn window_with_anchored_allocation() {
    // A Merge anchored at the region head must charge its bytes from
    // the anchor's execution in the DP, matching the profiler.
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([256], "x");
    let a = b.relu(x);
    let m = b.merge(a, MergeKind::Concat, 0, 4);
    let mut g = b.finish();
    g.set_alloc_with(m, a);
    let task = SchedTask::whole_graph(&g);
    let res = dp_schedule(&task, &SchedConfig::default());
    let ids = task.to_node_ids(&res.order);
    let prof = memory_profile(&g, &ids);
    assert_eq!(res.peak, prof.peak_bytes, "DP accounting matches profiler");
}

#[test]
fn keepalive_constrains_order() {
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([4], "x");
    let a = b.relu(x);
    let c = b.gelu(x);
    let g = {
        let mut g = b.finish();
        // c must run after a even though no data flows.
        g.add_keepalive(a, c).unwrap();
        g
    };
    let order = full_schedule(&g, &SchedConfig::default());
    let pa = order.iter().position(|&v| v == a).unwrap();
    let pc = order.iter().position(|&v| v == c).unwrap();
    assert!(pa < pc, "keepalive respected");
}

#[test]
fn outside_users_pin_window_tensors() {
    // A window tensor read from outside must never be freed inside.
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([1024], "x");
    let a = b.relu(x);
    let inner = b.gelu(a);
    let _outside = b.tanh_like(inner);
    let g = b.finish();
    let set: BTreeSet<NodeId> = [a, inner].into_iter().collect();
    let task = SchedTask::subset(&g, &set);
    // `inner` has an outside user: not freeable.
    let pinned = task
        .roots
        .iter()
        .filter(|r| !r.freeable && r.alloc_at.is_some())
        .count();
    assert!(pinned >= 1, "window outputs pinned");
}

trait TanhLike {
    fn tanh_like(&mut self, x: NodeId) -> NodeId;
}
impl TanhLike for GraphBuilder {
    fn tanh_like(&mut self, x: NodeId) -> NodeId {
        self.unary(magis_graph::op::UnaryKind::Tanh, x)
    }
}
