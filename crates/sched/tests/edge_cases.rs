//! Edge cases of the scheduling stack: degenerate windows, anchored
//! allocations, boundary tensors, and keepalive ordering.

use magis_graph::builder::GraphBuilder;
use magis_graph::graph::NodeId;
use magis_graph::GraphView;
use magis_graph::op::MergeKind;
use magis_graph::tensor::DType;
use magis_sched::{dp_schedule, full_schedule, SchedConfig, SchedTask};
use magis_sim::memory_profile;
use std::collections::BTreeSet;

#[test]
fn single_node_window() {
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([4], "x");
    let a = b.relu(x);
    let g = b.finish();
    let set: BTreeSet<NodeId> = [a].into_iter().collect();
    let task = SchedTask::subset(&g, &set);
    let res = dp_schedule(&task, &SchedConfig::default());
    assert_eq!(task.to_node_ids(&res.order), vec![a]);
}

#[test]
fn window_with_anchored_allocation() {
    // A Merge anchored at the region head must charge its bytes from
    // the anchor's execution in the DP, matching the profiler.
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([256], "x");
    let a = b.relu(x);
    let m = b.merge(a, MergeKind::Concat, 0, 4);
    let mut txn = magis_graph::GraphTxn::begin(&b.finish());
    txn.set_alloc_with(m, a);
    let g = txn.commit().0;
    let task = SchedTask::whole_graph(&g);
    let res = dp_schedule(&task, &SchedConfig::default());
    let ids = task.to_node_ids(&res.order);
    let prof = memory_profile(&g, &ids);
    assert_eq!(res.peak, prof.peak_bytes, "DP accounting matches profiler");
}

#[test]
fn keepalive_constrains_order() {
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([4], "x");
    let a = b.relu(x);
    let c = b.gelu(x);
    let g = {
        let mut txn = magis_graph::GraphTxn::begin(&b.finish());
        // c must run after a even though no data flows.
        txn.add_keepalive(a, c).unwrap();
        txn.commit().0
    };
    let order = full_schedule(&g, &SchedConfig::default());
    let pa = order.iter().position(|&v| v == a).unwrap();
    let pc = order.iter().position(|&v| v == c).unwrap();
    assert!(pa < pc, "keepalive respected");
}

#[test]
fn outside_users_pin_window_tensors() {
    // A window tensor read from outside must never be freed inside.
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([1024], "x");
    let a = b.relu(x);
    let inner = b.gelu(a);
    let _outside = b.tanh_like(inner);
    let g = b.finish();
    let set: BTreeSet<NodeId> = [a, inner].into_iter().collect();
    let task = SchedTask::subset(&g, &set);
    // `inner` has an outside user: not freeable.
    let pinned = task
        .roots
        .iter()
        .filter(|r| !r.freeable && r.alloc_at.is_some())
        .count();
    assert!(pinned >= 1, "window outputs pinned");
}

trait TanhLike {
    fn tanh_like(&mut self, x: NodeId) -> NodeId;
}
impl TanhLike for GraphBuilder {
    fn tanh_like(&mut self, x: NodeId) -> NodeId {
        self.unary(magis_graph::op::UnaryKind::Tanh, x)
    }
}

// ---------------------------------------------------------------------------
// Incremental-rescheduling edge cases: rewrites whose dirty window hits
// a schedule boundary (graph source / sink) or the peak-memory region
// itself. Each case checks the two contracts the evaluation pipeline
// depends on: the merged order is a valid topo order, and the
// delta-updated profile/lifetime table is bit-identical to a
// from-scratch recomputation.
// ---------------------------------------------------------------------------

use magis_graph::algo::is_topo_order;
use magis_graph::graph::Graph;
use magis_graph::op::{OpKind, UnaryKind};
use magis_sched::{incremental_schedule_profiled, IntervalParams};
use magis_sim::memory_profile_lifetimes;

/// A linear chain with one fat interior activation so the peak-memory
/// step sits in the middle of the schedule.
fn chain_graph() -> Graph {
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([64], "x");
    let a = b.relu(x);
    let fat = b.reshape(a, [64]);
    let big = b.gelu(fat);
    let c = b.sigmoid(big);
    let _d = b.relu(c);
    b.finish()
}

/// Runs the incremental scheduler with the parent's lifetime table and
/// asserts validity plus bit-identity of the delta profile against a
/// full recomputation of the chosen order.
fn check_incremental(g_old: &Graph, g_new: &Graph, s_old: &BTreeSet<NodeId>) {
    let cfg = SchedConfig::default();
    let psi_old = full_schedule(g_old, &cfg);
    let (_, lt_old) = memory_profile_lifetimes(g_old, &psi_old).expect("old profile");
    let plan_old = magis_sim::memory_plan(g_old, &psi_old).expect("old plan");
    let inc = incremental_schedule_profiled(
        g_old,
        g_new,
        s_old,
        &psi_old,
        Some(&lt_old),
        Some(&plan_old),
        &cfg,
        &IntervalParams::default(),
    )
    .expect("incremental schedule");
    assert!(is_topo_order(g_new, &inc.order), "merged order is a valid topo order");
    assert_eq!(inc.order.len(), g_new.len(), "order covers the new graph");
    let (full_prof, full_lt) =
        memory_profile_lifetimes(g_new, &inc.order).expect("full recompute");
    assert_eq!(inc.profile.peak_bytes, full_prof.peak_bytes, "delta peak bit-identical");
    assert_eq!(inc.lifetimes, full_lt, "delta lifetime table bit-identical");
    let full_plan = magis_sim::memory_plan(g_new, &inc.order).expect("full re-plan");
    assert_eq!(inc.plan.as_ref(), Some(&full_plan), "delta memory plan bit-identical");
}

#[test]
fn rewrite_touching_graph_source() {
    // Insert a node directly after the graph input: the dirty window
    // starts at schedule position 0, so the re-ordered region has no
    // clean prefix to splice back.
    let g_old = chain_graph();
    let src = g_old.node_ids().find(|&v| g_old.pre(v).is_empty()).expect("source");
    let user = g_old.suc(src)[0];
    let mut txn = magis_graph::GraphTxn::begin(&g_old);
    let inserted =
        txn.add(OpKind::Unary(UnaryKind::Relu), &[src]).expect("insert after source");
    txn.replace_input(user, src, inserted);
    let g_new = txn.commit().0;
    g_new.validate().expect("valid mutation");
    let s_old: BTreeSet<NodeId> = [src, user].into_iter().collect();
    check_incremental(&g_old, &g_new, &s_old);
}

#[test]
fn rewrite_touching_graph_sink() {
    // Append a consumer of the final sink: the dirty window runs to the
    // end of the old schedule, so there is no clean suffix and the new
    // node must be placed after everything it depends on.
    let g_old = chain_graph();
    let sink = g_old.node_ids().find(|&v| g_old.suc(v).is_empty()).expect("sink");
    let mut txn = magis_graph::GraphTxn::begin(&g_old);
    txn.add(OpKind::Unary(UnaryKind::Tanh), &[sink]).expect("append after sink");
    let g_new = txn.commit().0;
    g_new.validate().expect("valid mutation");
    let s_old: BTreeSet<NodeId> = [sink].into_iter().collect();
    check_incremental(&g_old, &g_new, &s_old);
}

#[test]
fn fission_style_split_of_peak_region() {
    // An F-Trans-shaped rewrite of the node executing at the old
    // schedule's peak step: its output is recomputed as two half-sized
    // slices that are concatenated back, and the original consumer is
    // routed through the concat. The dirty window therefore covers the
    // exact region whose lifetimes defined the old peak, which is the
    // worst case for the delta profiler's re-basing logic.
    let g_old = chain_graph();
    let cfg = SchedConfig::default();
    let psi_old = full_schedule(&g_old, &cfg);
    let prof = memory_profile(&g_old, &psi_old);
    let peak_step = prof
        .step_bytes
        .iter()
        .enumerate()
        .max_by_key(|(_, &bytes)| bytes)
        .map(|(i, _)| i)
        .expect("non-empty profile");
    // Pick the node at the peak step, falling back to an interior node
    // when the peak lands on a boundary op with no inputs.
    let v = psi_old[peak_step.min(psi_old.len() - 1)];
    let v = if g_old.pre(v).is_empty() || g_old.suc(v).is_empty() {
        psi_old
            .iter()
            .copied()
            .find(|&u| !g_old.pre(u).is_empty() && !g_old.suc(u).is_empty())
            .expect("interior node")
    } else {
        v
    };
    let src = g_old.pre(v)[0];
    let user = g_old.suc(v)[0];
    let n = g_old.node(v).meta.shape.dims()[0];
    let mut txn = magis_graph::GraphTxn::begin(&g_old);
    let half = n / 2;
    let s0 = txn
        .add(OpKind::Slice { axis: 0, start: 0, len: half }, &[src])
        .expect("first half");
    let s1 = txn
        .add(OpKind::Slice { axis: 0, start: half, len: n - half }, &[src])
        .expect("second half");
    let r0 = txn.add(g_old.node(v).op.clone(), &[s0]).expect("part 0");
    let r1 = txn.add(g_old.node(v).op.clone(), &[s1]).expect("part 1");
    let cat = txn.add(OpKind::Concat { axis: 0 }, &[r0, r1]).expect("stitch");
    txn.replace_input(user, v, cat);
    let g_new = txn.commit().0;
    g_new.validate().expect("valid split");
    let s_old: BTreeSet<NodeId> = [src, v, user].into_iter().collect();
    check_incremental(&g_old, &g_new, &s_old);
}
