//! `magis-served` — the standalone supervision daemon binary.
//!
//! A thin argument parser around [`magis_serve::Server`]; the CLI's
//! `magis serve` subcommand exposes the same knobs. Kept as its own
//! binary so tests can `kill -9` a real process and exercise journal
//! replay without going through the full CLI.

use magis_serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
magis-served — supervised optimization service

USAGE:
    magis-served [--addr HOST:PORT] [--state-dir DIR] [--workers N]
                 [--queue-capacity N] [--client-cap N] [--retry-cap N]
                 [--backoff-base-ms MS] [--drain-timeout-ms MS]
                 [--stall-after-ms MS] [--result-cache N]
                 [--port-file PATH] [--log-level LEVEL]

Listens for line-delimited JSON jobs (see magis-serve's protocol docs),
runs them on a bounded worker pool, journals every accepted job for
crash-safe recovery, and drains gracefully on SIGTERM/SIGINT.
";

fn parse(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
        let num = || -> Result<u64, String> {
            value.parse().map_err(|_| format!("{flag} needs an integer, got '{value}'"))
        };
        match flag {
            "--addr" => cfg.addr = value.clone(),
            "--state-dir" => cfg.state_dir = PathBuf::from(value),
            "--workers" => cfg.workers = num()?.max(1) as usize,
            "--queue-capacity" => cfg.queue_capacity = num()? as usize,
            "--client-cap" => cfg.client_cap = num()? as usize,
            "--retry-cap" => cfg.retry_cap = num()? as u32,
            "--backoff-base-ms" => cfg.backoff_base_ms = num()?,
            "--drain-timeout-ms" => cfg.drain_timeout_ms = num()?,
            "--stall-after-ms" => cfg.stall_after_ms = num()?,
            "--result-cache" => cfg.result_cache = num()? as usize,
            "--port-file" => cfg.port_file = Some(PathBuf::from(value)),
            "--log-level" => {
                let level = value.parse().map_err(|e| format!("--log-level: {e}"))?;
                magis_obs::log::set_level(level);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse(&args) {
        Ok(cfg) => cfg,
        Err(msg) if msg.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("magis-served: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("magis-served: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Ok(addr) = server.local_addr() {
        eprintln!("magis-served: listening on {addr}");
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("magis-served: {e}");
            ExitCode::FAILURE
        }
    }
}
