//! # MAGIS — Memory Optimization via Coordinated Graph Transformation
//! # and Scheduling for DNN
//!
//! A from-scratch Rust reproduction of the ASPLOS'24 paper by Chen et
//! al. This facade crate re-exports the workspace members:
//!
//! * [`graph`] — computation-graph substrate (operators, autodiff,
//!   dominator trees, WL hashing, …),
//! * [`sim`] — RTX-3090-like cost model and memory/latency simulator,
//! * [`sched`] — memory-aware ordering DP, narrow-waist partitioning,
//!   incremental scheduling (Algorithm 2),
//! * [`core`] — the paper's contribution: D-Graphs, fission
//!   transformations, the F-Tree (Algorithm 1), M-Rules, and the
//!   M-Optimizer search (Algorithm 3),
//! * [`models`] — Table 2 workloads (ResNet-50, BERT, ViT, U-Net,
//!   U-Net++, GPT-Neo, BTLM) as training graphs,
//! * [`baselines`] — POFO/DTR/XLA/TVM/Torch-Inductor-like comparison
//!   systems,
//! * [`obs`] — zero-dependency structured tracing, metrics, and
//!   search-timeline observability,
//! * [`serve`] — supervised optimization service: a long-lived daemon
//!   with deadlines, backpressure, and crash-safe job recovery.
//!
//! ## Quickstart
//!
//! ```
//! use magis::prelude::*;
//! use std::time::Duration;
//!
//! // A small training workload.
//! let tg = magis::models::mlp::mlp(&Default::default());
//!
//! // Minimize peak memory, allowing 10% extra latency.
//! let cfg = OptimizerConfig::new(Objective::MinMemory { lat_limit: f64::MAX })
//!     .with_budget(Duration::from_millis(500))
//!     .with_max_evals(60);
//! let result = optimize_memory(tg.graph.clone(), 1.10, &cfg);
//!
//! let before = MState::initial(tg.graph, &EvalContext::default());
//! assert!(result.best.eval.peak_bytes <= before.eval.peak_bytes);
//! ```

pub use magis_baselines as baselines;
pub use magis_core as core;
pub use magis_graph as graph;
pub use magis_models as models;
pub use magis_obs as obs;
pub use magis_sched as sched;
pub use magis_serve as serve;
pub use magis_sim as sim;

/// The names most programs need.
pub mod prelude {
    pub use magis_core::optimizer::{
        optimize, optimize_latency, optimize_memory, Objective, OptimizerConfig,
    };
    pub use magis_core::state::{EvalContext, MState};
    pub use magis_core::{FTree, FissionSpec};
    pub use magis_graph::builder::GraphBuilder;
    pub use magis_graph::grad::{append_backward, TrainOptions};
    pub use magis_graph::{
        DType, Graph, GraphDelta, GraphTxn, GraphView, NodeId, OpKind, Shape, TensorMeta,
    };
    pub use magis_models::Workload;
    pub use magis_sim::{evaluate, CostModel, DeviceSpec};
}
