//! Determinism and thread-safety of the parallel M-Optimizer.
//!
//! The parallel candidate-evaluation layer must be invisible in the
//! results: `threads = 1` and `threads = N` run the same search
//! trajectory — identical incumbent, identical progress history,
//! identical counters — because candidates are sorted by a total
//! order before the fan-out and merged back in that order.
//!
//! The eval cap (`max_evals`) is small and the wall-clock budget is
//! generous, so neither run can time out mid-batch; timing is then the
//! only nondeterministic input and it never influences the trajectory.

use magis::prelude::*;
use std::time::Duration;

/// A capped, never-timing-out configuration.
fn capped(objective: Objective, threads: usize) -> OptimizerConfig {
    OptimizerConfig::new(objective)
        .with_budget(Duration::from_secs(3600))
        .with_max_evals(60)
        .with_threads(threads)
}

/// Runs one workload under one objective with the given thread count
/// and returns everything the trajectory determines.
struct Run {
    best: (u64, f64),
    history: Vec<(u64, f64)>,
    evaluated: usize,
    expanded: usize,
    candidates: usize,
    filtered: usize,
}

fn run(tg: &Graph, objective: Objective, threads: usize) -> Run {
    let res = optimize(tg.clone(), &capped(objective, threads));
    assert_eq!(res.stats.threads, threads);
    Run {
        best: res.best.cost(),
        history: res.history.iter().map(|p| (p.peak_bytes, p.latency)).collect(),
        evaluated: res.stats.evaluated,
        expanded: res.stats.expanded,
        candidates: res.stats.candidates,
        filtered: res.stats.filtered,
    }
}

fn assert_identical(w: Workload, scale: f64) {
    let tg = w.build(scale);
    let init = MState::initial(tg.graph.clone(), &EvalContext::default());
    let objectives = [
        Objective::MinMemory { lat_limit: init.eval.latency * 1.10 },
        Objective::MinLatency {
            mem_limit: (init.eval.peak_bytes as f64 * 0.8) as u64,
        },
    ];
    for objective in objectives {
        let serial = run(&tg.graph, objective, 1);
        let parallel = run(&tg.graph, objective, 4);
        assert_eq!(
            serial.best, parallel.best,
            "{}: best (peak_bytes, latency) must not depend on thread count",
            w.label()
        );
        assert_eq!(
            serial.history.len(),
            parallel.history.len(),
            "{}: incumbent-improvement history length must match",
            w.label()
        );
        assert_eq!(serial.history, parallel.history, "{}: history points", w.label());
        assert_eq!(serial.evaluated, parallel.evaluated, "{}: evaluated", w.label());
        assert_eq!(serial.expanded, parallel.expanded, "{}: expanded", w.label());
        assert_eq!(serial.candidates, parallel.candidates, "{}: candidates", w.label());
        assert_eq!(serial.filtered, parallel.filtered, "{}: filtered", w.label());
        assert!(serial.evaluated > 0, "{}: the capped search did real work", w.label());
    }
}

#[test]
fn unet_is_deterministic_across_thread_counts() {
    assert_identical(Workload::UNet, 0.15);
}

#[test]
fn bert_is_deterministic_across_thread_counts() {
    assert_identical(Workload::BertBase, 0.1);
}

#[test]
fn resnet_is_deterministic_across_thread_counts() {
    assert_identical(Workload::ResNet50, 0.1);
}

#[test]
fn repeated_parallel_runs_are_identical() {
    // Beyond serial-vs-parallel: the parallel path replayed twice must
    // agree with itself (no hidden iteration-order dependence).
    let tg = Workload::UNet.build(0.15);
    let init = MState::initial(tg.graph.clone(), &EvalContext::default());
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.10 };
    let a = run(&tg.graph, obj, 4);
    let b = run(&tg.graph, obj, 4);
    assert_eq!(a.best, b.best);
    assert_eq!(a.history, b.history);
}

#[test]
fn concurrent_optimize_calls_share_a_graph() {
    // Two searches from different threads over the same model must not
    // interfere: `optimize` holds no global mutable state, and the
    // shared `Graph` is only read.
    let tg = Workload::UNet.build(0.15);
    let init = MState::initial(tg.graph.clone(), &EvalContext::default());
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.10 };
    let g = &tg.graph;
    let (a, b) = std::thread::scope(|s| {
        let ha = s.spawn(move || run(g, obj, 2));
        let hb = s.spawn(move || run(g, obj, 2));
        (ha.join().expect("first search"), hb.join().expect("second search"))
    });
    assert_eq!(a.best, b.best);
    assert_eq!(a.history, b.history);
    assert_eq!(a.evaluated, b.evaluated);
}

#[test]
fn search_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Graph>();
    assert_send_sync::<MState>();
    assert_send_sync::<EvalContext>();
    assert_send_sync::<OptimizerConfig>();
    assert_send_sync::<magis::sim::PerfCache>();
}
