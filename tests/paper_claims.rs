//! Qualitative checks of the paper's comparative claims at test scale:
//! who wins where, and why — the "shape" of the evaluation section.

use magis::baselines::BaselineKind;
use magis::prelude::*;
use std::time::Duration;

fn magis_best_mem(g: &Graph, lat_factor: f64) -> (u64, u64) {
    let ctx = EvalContext::default();
    let init = MState::initial(g.clone(), &ctx);
    let cfg = OptimizerConfig::new(Objective::MinMemory {
        lat_limit: init.eval.latency * lat_factor,
    })
    .with_budget(Duration::from_secs(8));
    let res = magis::core::optimize(g.clone(), &cfg);
    let best = res
        .pareto
        .best_memory_under(init.eval.latency * lat_factor)
        .unwrap_or(res.best.eval.peak_bytes);
    (best, init.eval.peak_bytes)
}

/// §7.2.1/§7.2.2 on U-Net: complex inter-cell structure gives MAGIS
/// its largest advantage; POFO's chain model struggles.
#[test]
fn magis_beats_pofo_on_unet() {
    let tg = Workload::UNet.build(0.3);
    let cm = CostModel::default();
    let (magis_peak, base_peak) = magis_best_mem(&tg.graph, 1.10);
    let magis_ratio = magis_peak as f64 / base_peak as f64;
    // POFO's best ratio at any budget (bisection from the harness).
    let anchor = magis::baselines::pytorch::run(&tg.graph, &cm);
    let mut pofo_best = 1.0f64;
    for frac in [0.8, 0.6, 0.4, 0.25] {
        let r = BaselineKind::Pofo.run(
            &tg.graph,
            Some((anchor.peak_bytes as f64 * frac) as u64),
            &cm,
        );
        if r.feasible && r.latency <= anchor.latency * 1.10 {
            pofo_best = pofo_best.min(r.peak_bytes as f64 / anchor.peak_bytes as f64);
        }
    }
    assert!(
        magis_ratio < pofo_best,
        "MAGIS {magis_ratio:.3} beats POFO {pofo_best:.3} on U-Net"
    );
}

/// §7.1: compilers (TVM/TI) only do basic memory saving — their memory
/// equals the anchor's, and they cannot meet an 80% constraint.
#[test]
fn compilers_fail_memory_constraints() {
    let tg = Workload::BertBase.build(0.15);
    let cm = CostModel::default();
    let anchor = magis::baselines::pytorch::run(&tg.graph, &cm);
    for b in [BaselineKind::Tvm, BaselineKind::TorchInductor] {
        let unconstrained = b.run(&tg.graph, None, &cm);
        assert_eq!(unconstrained.peak_bytes, anchor.peak_bytes);
        assert!(unconstrained.latency < anchor.latency, "fusion bonus");
        let constrained = b.run(&tg.graph, Some((anchor.peak_bytes as f64 * 0.8) as u64), &cm);
        assert!(!constrained.feasible, "{} FAILURE at 80%", b.label());
    }
}

/// §7.2.3: DTR's runtime heuristic gives a near-linear trade-off even
/// under tight limits; XLA's greedy planning hits a wall earlier.
#[test]
fn dtr_degrades_more_gracefully_than_xla() {
    let tg = Workload::BertBase.build(0.15);
    let cm = CostModel::default();
    let anchor = magis::baselines::pytorch::run(&tg.graph, &cm);
    let tight = (anchor.peak_bytes as f64 * 0.45) as u64;
    let dtr = BaselineKind::Dtr.run(&tg.graph, Some(tight), &cm);
    let xla = BaselineKind::Xla.run(&tg.graph, Some(tight), &cm);
    assert!(dtr.feasible, "DTR reaches 45%");
    assert!(
        !xla.feasible || xla.latency >= dtr.latency,
        "greedy remat is no better than DTR under tight limits"
    );
}

/// Fig. 12's premise: a fixed micro-batch factor helps POFO under
/// tight budgets but costs latency; different budgets favour different
/// factors — motivating coordinated (searched) fission.
#[test]
fn microbatching_extends_pofo_reach() {
    use magis::baselines::microbatch::run_with_pofo;
    use magis::models::vit::{vit, VitConfig};
    let cfg = VitConfig::base().scaled(0.12);
    let tg = vit(&cfg);
    let cm = CostModel::default();
    let anchor = magis::baselines::pytorch::run(&tg.graph, &cm);
    let tight = (anchor.peak_bytes as f64 * 0.35) as u64;
    let plain = BaselineKind::Pofo.run(&tg.graph, Some(tight), &cm);
    let full_batch = cfg.batch;
    let micro = run_with_pofo(
        |batch| vit(&VitConfig { batch, ..cfg.clone() }),
        full_batch,
        4,
        Some(tight),
        &cm,
    );
    // Fig. 12's shape: the pre-pass reaches deeper memory than plain
    // POFO (possibly still short of a very tight budget at toy scale),
    // paying latency for it.
    assert!(
        (micro.feasible && !plain.feasible) || micro.peak_bytes < plain.peak_bytes,
        "micro-batching extends POFO's reach: plain {plain:?} micro {micro:?}"
    );
    assert!(micro.latency > plain.latency, "micro-batching costs latency");
}
