//! Property-based tests of the scheduling stack over random
//! NASNet-like DNNs: full and incremental schedules are always valid
//! topological orders; the memory DP never does worse than naive
//! ordering; incremental scheduling stays close to full scheduling
//! (the §7.3 claim).

use magis::core::rules::{self, RuleConfig, Transform};
use magis::core::state::{EvalContext, MState};
use magis::prelude::*;
use magis::sched::{full_schedule, incremental_schedule, IntervalParams, SchedConfig};
use magis::sim::memory_profile;
use magis_graph::algo::{is_topo_order, topo_order};
use magis_models::random_dnn::{random_dnn, RandomDnnConfig};
use magis_util::prop::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn full_schedule_valid_and_no_worse_than_naive(seed in 0u64..500) {
        let cfg = RandomDnnConfig { cells: 4, ..RandomDnnConfig::default() };
        let g = random_dnn(&cfg, seed);
        let sched = full_schedule(&g, &SchedConfig::default());
        prop_assert!(is_topo_order(&g, &sched));
        let naive_peak = memory_profile(&g, &topo_order(&g)).peak_bytes;
        let dp_peak = memory_profile(&g, &sched).peak_bytes;
        prop_assert!(dp_peak <= naive_peak, "DP {dp_peak} <= naive {naive_peak}");
    }

    #[test]
    fn incremental_schedule_valid_after_random_transform(seed in 0u64..200) {
        let cfg = RandomDnnConfig { cells: 4, ..RandomDnnConfig::default() };
        let g = random_dnn(&cfg, seed);
        let ctx = EvalContext::default();
        let state = MState::initial(g, &ctx);
        let rcfg = RuleConfig { hotspot_filter: false, ..RuleConfig::default() };
        let cands: Vec<Transform> = rules::generate(&state, &rcfg);
        prop_assume!(!cands.is_empty());
        let t = &cands[seed as usize % cands.len()];
        let Ok(applied) = rules::apply(&state, t) else { return Ok(()); };
        let order = incremental_schedule(
            &state.eval.graph,
            &applied.base,
            &applied.mutated,
            &state.eval.order,
            &SchedConfig::default(),
            &IntervalParams::default(),
        );
        prop_assert!(is_topo_order(&applied.base, &order));
        // Quality: incremental within 25% of scheduling from scratch.
        let fs = full_schedule(&applied.base, &SchedConfig::default());
        let is_peak = memory_profile(&applied.base, &order).peak_bytes as f64;
        let fs_peak = memory_profile(&applied.base, &fs).peak_bytes as f64;
        prop_assert!(is_peak <= fs_peak * 1.25, "IS {is_peak} vs FS {fs_peak}");
    }

    #[test]
    fn wl_hash_is_schedule_invariant(seed in 0u64..200) {
        // The graph hash must not depend on anything the scheduler
        // touches — only on structure.
        let cfg = RandomDnnConfig { cells: 3, ..RandomDnnConfig::default() };
        let g = random_dnn(&cfg, seed);
        let h1 = magis::graph::algo::graph_hash(&g);
        let g2 = g.clone();
        let _ = full_schedule(&g2, &SchedConfig::default());
        prop_assert_eq!(magis::graph::algo::graph_hash(&g2), h1);
    }

    #[test]
    fn memory_profile_matches_sum_of_live_tensors(seed in 0u64..100) {
        // Cross-check the sweep-based profiler against a quadratic
        // reference implementation on small graphs.
        let cfg = RandomDnnConfig { cells: 2, blocks: 3, ..RandomDnnConfig::default() };
        let g = random_dnn(&cfg, seed);
        let order = topo_order(&g);
        let prof = memory_profile(&g, &order);
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        // Reference: per-step sum over storage roots with root-level
        // lifetimes (inputs from step 0; terminals to the end; aliases
        // extend their root).
        let n = order.len();
        let mut alloc = std::collections::HashMap::new();
        let mut free = std::collections::HashMap::new();
        for &v in &order {
            let root = magis::sim::storage_root(&g, v);
            if magis::sim::memory::device_bytes(&g, root) == 0 {
                continue;
            }
            let a = if g.node(root).op.is_input() { 0 } else { pos[&root] };
            let e = alloc.entry(root).or_insert(a);
            *e = (*e).min(a);
            let mut last = pos[&v];
            for s in g.suc(v) {
                last = last.max(pos[&s]);
            }
            if g.node(v).succs().is_empty() {
                last = n - 1;
            }
            let f = free.entry(root).or_insert(last);
            *f = (*f).max(last);
        }
        for (i, &m) in prof.step_bytes.iter().enumerate() {
            let expect: u64 = alloc
                .iter()
                .filter(|&(r, &a)| a <= i && i <= free[r])
                .map(|(&r, _)| magis::sim::memory::device_bytes(&g, r))
                .sum();
            prop_assert_eq!(m, expect, "step {}", i);
        }
    }
}
