//! Golden tests for the backend registry: every registered device
//! profile must drive the full evaluate pipeline to sane results, the
//! default `rtx3090` profile must be bit-identical to the historical
//! hard-coded cost model, defective specs must be rejected with typed
//! errors, calibration must round-trip a synthetic trace, and the
//! search trajectory must stay bit-identical across thread counts on
//! *every* backend — determinism is a per-backend contract, not an
//! artifact of the default profile.

use magis::prelude::*;
use magis::sim::backend::OpClass;
use magis::sim::{calibrate, Backend, BackendRegistry, EfficiencyTable, SpecError, DEFAULT_BACKEND};
use std::time::Duration;

/// The four bench workloads at the scales tier-1 already exercises.
fn bench_models() -> Vec<(Workload, f64)> {
    vec![
        (Workload::UNet, 0.2),
        (Workload::BertBase, 0.12),
        (Workload::ResNet50, 0.1),
        (Workload::VitBase, 0.1),
    ]
}

#[test]
fn registry_has_at_least_four_profiles() {
    let reg = BackendRegistry::builtin();
    assert!(reg.len() >= 4, "built-in registry ships >= 4 profiles, got {}", reg.len());
    for name in ["rtx3090", "a100", "mobile", "tpu"] {
        assert!(reg.get(name).is_some(), "{name} is registered");
    }
    assert_eq!(DEFAULT_BACKEND, "rtx3090");
    // Name order, so `--backend-list` output is stable.
    let names = reg.names();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
}

#[test]
fn every_backend_evaluates_the_bench_models() {
    let reg = BackendRegistry::builtin();
    for (w, scale) in bench_models() {
        let g = w.build(scale).graph;
        for backend in reg.iter() {
            let ctx = EvalContext::for_backend(backend);
            let state = MState::initial(g.clone(), &ctx);
            assert!(
                state.eval.latency.is_finite() && state.eval.latency > 0.0,
                "{w:?} on {}: latency {}",
                backend.name(),
                state.eval.latency
            );
            assert!(
                state.eval.peak_bytes > 0,
                "{w:?} on {}: zero peak memory",
                backend.name()
            );
            assert_eq!(ctx.backend_name(), backend.name());
        }
    }
}

#[test]
fn default_backend_is_bit_identical_to_the_legacy_cost_model() {
    let reg = BackendRegistry::builtin();
    let rtx = reg.get(DEFAULT_BACKEND).expect("default registered");
    for (w, scale) in bench_models() {
        let g = w.build(scale).graph;
        let legacy = MState::initial(g.clone(), &EvalContext::default());
        let via_registry = MState::initial(g.clone(), &EvalContext::for_backend(rtx));
        assert_eq!(
            legacy.eval.peak_bytes, via_registry.eval.peak_bytes,
            "{w:?}: peak bytes identical"
        );
        assert_eq!(
            legacy.eval.latency.to_bits(),
            via_registry.eval.latency.to_bits(),
            "{w:?}: latency bit-identical"
        );
    }
}

#[test]
fn spec_validation_rejects_defective_specs() {
    let good = || BackendRegistry::builtin().get("a100").expect("a100").device().clone();
    let eff = EfficiencyTable::default();

    let mut d = good();
    d.peak_flops = f64::NAN;
    assert!(matches!(
        Backend::new("x", d, eff),
        Err(SpecError::NonFinite { .. })
    ));

    let mut d = good();
    d.mem_bandwidth = 0.0;
    assert!(matches!(
        Backend::new("x", d, eff),
        Err(SpecError::NonPositive { .. })
    ));

    let mut d = good();
    d.xfer_bandwidth = -1.0;
    assert!(matches!(
        Backend::new("x", d, eff),
        Err(SpecError::NonPositive { .. })
    ));

    let mut d = good();
    d.launch_overhead = -1e-6;
    assert!(matches!(
        Backend::new("x", d, eff),
        Err(SpecError::NegativeOverhead { .. })
    ));

    let mut d = good();
    d.mem_capacity = 0;
    assert!(Backend::new("x", d, eff).is_err());

    assert!(matches!(
        Backend::new("", good(), eff),
        Err(SpecError::EmptyName)
    ));

    let mut bad_eff = eff;
    bad_eff.conv = 1.5;
    assert!(matches!(
        Backend::new("x", good(), bad_eff),
        Err(SpecError::Efficiency { .. })
    ));

    let mut bad_eff = eff;
    bad_eff.matmul = 0.0;
    assert!(matches!(
        Backend::new("x", good(), bad_eff),
        Err(SpecError::Efficiency { .. })
    ));

    // Registration rejects duplicates with a typed error.
    let mut reg = BackendRegistry::builtin();
    let dup = reg.get("mobile").expect("mobile").clone();
    assert!(matches!(reg.register(dup), Err(SpecError::DuplicateName { .. })));
}

#[test]
fn calibration_round_trips_a_synthetic_trace() {
    let reg = BackendRegistry::builtin();
    let mobile = reg.get("mobile").expect("mobile");
    let shapes = [
        (OpClass::MatMul, 2.0e11, 2.0e7),
        (OpClass::MatMul, 8.0e11, 8.0e7),
        (OpClass::BatchMatMul, 1.0e11, 3.0e7),
        (OpClass::BatchMatMul, 4.0e11, 9.0e7),
        (OpClass::Conv, 3.0e11, 5.0e7),
        (OpClass::Conv, 9.0e11, 1.2e8),
        (OpClass::Normalization, 1.0e8, 6.0e7),
        (OpClass::Normalization, 2.0e8, 1.2e8),
        (OpClass::Other, 1.0e8, 9.0e7),
        (OpClass::Other, 3.0e8, 2.7e8),
    ];
    let samples = calibrate::synthesize_trace(mobile, &shapes);
    // Through the serialized form, as the CLI would read it.
    let reparsed = calibrate::parse_trace(&calibrate::render_trace(&samples)).expect("parses");
    assert_eq!(reparsed.len(), samples.len());
    let fitted = mobile.calibrated("mobile-cal", &reparsed).expect("fit succeeds");
    assert_eq!(fitted.name(), "mobile-cal");
    for class in OpClass::all() {
        let want = mobile.efficiency().get(class);
        let got = fitted.efficiency().get(class);
        let rel = (got - want).abs() / want;
        assert!(rel < 0.05, "{class}: fitted {got} vs true {want} ({rel:.3} rel err)");
    }
    let want_l = mobile.device().launch_overhead;
    let got_l = fitted.device().launch_overhead;
    assert!(
        (got_l - want_l).abs() < 0.5 * want_l.max(1e-7),
        "launch overhead: fitted {got_l} vs true {want_l}"
    );
    // An empty trace is a typed error, not a panic or a silent default.
    assert!(mobile.calibrated("x", &[]).is_err());
}

#[test]
fn per_backend_evaluation_metrics_are_labeled() {
    let reg = BackendRegistry::builtin();
    let a100 = reg.get("a100").expect("a100");
    let tg = Workload::UNet.build(0.1);
    let _ = MState::initial(tg.graph.clone(), &EvalContext::for_backend(a100));
    let text = magis::obs::metrics::default_registry().render();
    assert!(
        text.contains("magis_sim_evaluations_by_backend{backend=\"a100\"}"),
        "per-backend counter family present:\n{text}"
    );
}

/// Capped, never-timing-out search (timing must not steer the
/// trajectory), as in the incremental-eval harness.
fn capped(objective: Objective, threads: usize) -> OptimizerConfig {
    OptimizerConfig::new(objective)
        .with_budget(Duration::from_secs(3600))
        .with_max_evals(60)
        .with_threads(threads)
}

#[test]
fn search_is_bit_identical_across_threads_on_every_backend() {
    let tg = Workload::UNet.build(0.2);
    for backend in BackendRegistry::builtin().iter() {
        let run = |threads: usize| {
            let ctx = EvalContext::for_backend(backend);
            let init = MState::initial(tg.graph.clone(), &ctx);
            let mut cfg = capped(
                Objective::MinMemory { lat_limit: init.eval.latency * 1.25 },
                threads,
            );
            cfg.ctx = EvalContext::for_backend(backend);
            let res = optimize(tg.graph.clone(), &cfg);
            let history: Vec<(u64, u64)> =
                res.history.iter().map(|p| (p.peak_bytes, p.latency.to_bits())).collect();
            (res.best.cost(), history, res.stats.evaluated)
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.0 .0, parallel.0 .0, "{}: peak bytes", backend.name());
        assert_eq!(
            serial.0 .1.to_bits(),
            parallel.0 .1.to_bits(),
            "{}: latency bit-identical",
            backend.name()
        );
        assert_eq!(serial.1, parallel.1, "{}: history identical", backend.name());
        assert_eq!(serial.2, parallel.2, "{}: evaluation count", backend.name());
    }
}
