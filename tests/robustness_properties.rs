//! Property-based corruption tests for the invariant enforcers: every
//! random mutilation of a valid schedule must be rejected by
//! [`validate_schedule`], and every mutilation of a valid
//! [`FissionSpec`] by [`FissionSpec::validate`]. These are the checks
//! the hardened optimizer leans on under `--paranoia`, so they must be
//! airtight against exactly the corruption classes fault injection
//! produces.

use magis::core::dgraph::{component_dims, DimGraph};
use magis::core::fission::{FissionError, FissionSpec};
use magis::prelude::*;
use magis::sched::{validate_schedule, Schedule, ScheduleError};
use magis_graph::algo::{topo_order, weakly_connected_components};
use magis_models::random_dnn::{random_dnn, RandomDnnConfig};
use magis_util::prop::prelude::*;
use std::collections::BTreeSet;

fn small_dnn(seed: u64) -> Graph {
    let cfg = RandomDnnConfig { cells: 3, ..RandomDnnConfig::default() };
    random_dnn(&cfg, seed)
}

/// A graph node that has at least one data input (so a reordering can
/// actually violate a dependency).
fn consumer_with_input(g: &Graph, order: &[NodeId], pick: usize) -> Option<(usize, NodeId)> {
    let candidates: Vec<(usize, NodeId)> = order
        .iter()
        .enumerate()
        .filter_map(|(i, &v)| g.node(v).inputs().first().map(|&u| (i, u)))
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[pick % candidates.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn intact_schedules_validate(seed in 0u64..300) {
        let g = small_dnn(seed);
        let order = topo_order(&g);
        prop_assert!(validate_schedule(&g, &order).is_ok());
        prop_assert!(Schedule::new(&order).validate(&g).is_ok());
    }

    #[test]
    fn dropped_entry_is_rejected(seed in 0u64..300, pick in 0usize..1000) {
        let g = small_dnn(seed);
        let mut order = topo_order(&g);
        prop_assume!(order.len() >= 2);
        order.remove(pick % order.len());
        let err = validate_schedule(&g, &order).unwrap_err();
        prop_assert!(matches!(
            err,
            ScheduleError::MissingNode(_) | ScheduleError::LengthMismatch { .. }
        ), "got {err:?}");
    }

    #[test]
    fn duplicated_entry_is_rejected(seed in 0u64..300, pick in 0usize..1000) {
        // The CorruptRewrite fault: one entry overwrites another, so
        // the length still matches but a node is scheduled twice.
        let g = small_dnn(seed);
        let mut order = topo_order(&g);
        prop_assume!(order.len() >= 2);
        let i = pick % order.len();
        let j = (i + 1) % order.len();
        order[j] = order[i];
        let err = validate_schedule(&g, &order).unwrap_err();
        prop_assert!(matches!(
            err,
            ScheduleError::DuplicateNode(_) | ScheduleError::MissingNode(_)
        ), "got {err:?}");
    }

    #[test]
    fn dead_node_is_rejected(seed in 0u64..300, pick in 0usize..1000) {
        let g = small_dnn(seed);
        let mut order = topo_order(&g);
        prop_assume!(!order.is_empty());
        let i = pick % order.len();
        order[i] = NodeId::from_index(g.capacity() + 7);
        let err = validate_schedule(&g, &order).unwrap_err();
        prop_assert!(matches!(
            err,
            ScheduleError::DeadNode(_) | ScheduleError::MissingNode(_)
        ), "got {err:?}");
    }

    #[test]
    fn consumer_before_producer_is_rejected(seed in 0u64..300, pick in 0usize..1000) {
        let g = small_dnn(seed);
        let mut order = topo_order(&g);
        let Some((i, _dep)) = consumer_with_input(&g, &order, pick) else {
            return Ok(());
        };
        // Move the consumer to the front: its producer now comes later.
        // In a valid topo order a node with an input can never sit at
        // position 0, so the move is always a real reordering.
        prop_assert!(i != 0);
        let v = order.remove(i);
        order.insert(0, v);
        prop_assert!(matches!(
            validate_schedule(&g, &order),
            Err(ScheduleError::DependencyViolation { .. })
        ));
    }
}

/// Enumerates a few valid fission specs of `g` (same construction the
/// fission property suite uses).
fn valid_specs(g: &Graph) -> Vec<FissionSpec> {
    let dg = DimGraph::build(g);
    let order = topo_order(g);
    let mut specs = Vec::new();
    for comp in dg.components() {
        let nodes: BTreeSet<NodeId> = comp.iter().map(|&(v, _)| v).collect();
        let comp_order: Vec<NodeId> =
            order.iter().copied().filter(|v| nodes.contains(v)).collect();
        for len in [2usize, 4] {
            for start in (0..comp_order.len().saturating_sub(len)).step_by(5) {
                let set: BTreeSet<NodeId> =
                    comp_order[start..start + len].iter().copied().collect();
                if weakly_connected_components(g, &set).len() != 1 {
                    continue;
                }
                let Some(dims) = component_dims(&comp, &set) else { continue };
                let spec = FissionSpec { set, dims, parts: 2 };
                if spec.validate(g).is_ok() {
                    specs.push(spec);
                }
            }
        }
    }
    specs
}

fn build_mlp(batch: u64, hidden: u64, depth: usize) -> Graph {
    let mut b = GraphBuilder::new(DType::F32);
    let mut cur = b.input([batch, hidden], "x");
    for i in 0..depth {
        let w = b.weight([hidden, hidden], &format!("w{i}"));
        let h = b.matmul(cur, w);
        cur = b.gelu(h);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn corrupted_fission_specs_are_rejected(
        batch in 16u64..64,
        hidden in 16u64..48,
        pick in 0usize..1000,
    ) {
        let g = build_mlp(batch, hidden, 4);
        let specs = valid_specs(&g);
        prop_assume!(!specs.is_empty());
        let spec = specs[pick % specs.len()].clone();
        prop_assert!(spec.validate(&g).is_ok());

        // Coverage hole: a node in `set` with no dimension choice.
        let mut holed = spec.clone();
        let victim = *holed.set.iter().next().expect("non-empty set");
        holed.dims.remove(&victim);
        prop_assert_eq!(holed.validate(&g), Err(FissionError::BadCoverage));

        // Empty set.
        let mut empty = spec.clone();
        empty.set.clear();
        empty.dims.clear();
        prop_assert_eq!(empty.validate(&g), Err(FissionError::BadCoverage));

        // Dead node injected into both set and dims.
        let mut dead = spec.clone();
        let ghost = NodeId::from_index(g.capacity() + 3);
        dead.set.insert(ghost);
        dead.dims.insert(ghost, 1);
        prop_assert!(dead.validate(&g).is_err());

        // Part count larger than any dimension extent.
        let mut huge = spec.clone();
        huge.parts = u64::MAX;
        prop_assert!(matches!(
            huge.validate(&g),
            Err(FissionError::ExtentTooSmall(_, _))
        ));
    }
}
