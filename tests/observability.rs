//! Observability determinism and round-trip properties.
//!
//! The determinism contract: every count-type metric and the trace
//! event *identity set* are bit-identical between `threads = 1` and
//! `threads = 4` on a seeded, eval-capped search; only wall-time
//! measurements (histogram sums, `ts_us` / `dur_us` / `thread` /
//! `elapsed_us` / `eval_time_us`) may differ.
//!
//! The metrics registry and trace sink are process-global, so every
//! test that touches them serializes on [`obs_lock`].

use magis::core::optimizer::OptimizeResult;
use magis::obs::metrics::default_registry;
use magis::obs::trace::{self, BufferSink, TraceEvent};
use magis::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

struct Capture {
    counters: BTreeMap<String, u64>,
    histogram_counts: BTreeMap<String, u64>,
    identities: Vec<String>,
    events: Vec<TraceEvent>,
    res: OptimizeResult,
}

/// One seeded, eval-capped search with a fresh registry and an
/// in-memory trace sink. The generous budget guarantees the cap — not
/// the clock — ends the search, so timing never steers the trajectory.
fn traced_run(threads: usize) -> Capture {
    let tg = Workload::UNet.build(0.15);
    let init = MState::initial(tg.graph.clone(), &EvalContext::default());
    let cfg = OptimizerConfig::new(Objective::MinMemory { lat_limit: init.eval.latency * 1.10 })
        .with_budget(Duration::from_secs(3600))
        .with_max_evals(48)
        .with_threads(threads);
    default_registry().reset();
    let sink = Arc::new(BufferSink::new());
    trace::install(sink.clone());
    let res = optimize(tg.graph.clone(), &cfg);
    trace::uninstall();
    let events = sink.take();
    let mut identities: Vec<String> = events.iter().map(TraceEvent::identity).collect();
    identities.sort();
    let snap = default_registry().snapshot();
    Capture {
        counters: snap.counters,
        histogram_counts: snap.histograms.iter().map(|(k, &(n, _))| (k.clone(), n)).collect(),
        identities,
        events,
        res,
    }
}

#[test]
fn count_metrics_and_trace_set_identical_across_threads() {
    let _g = obs_lock();
    let serial = traced_run(1);
    let parallel = traced_run(4);

    // Every counter — including the per-(family, outcome) labeled ones
    // — is bit-identical, and so is every histogram *count* (only the
    // wall-time sums may differ).
    assert_eq!(serial.counters, parallel.counters);
    assert_eq!(serial.histogram_counts, parallel.histogram_counts);

    // The searches did real, observable work.
    assert!(serial.counters["magis_core_expansions"] > 0);
    assert!(serial.counters["magis_core_evaluated"] > 0);
    assert!(serial.counters["magis_core_queue_pushes"] > 0);
    assert!(serial.counters.keys().any(|k| k.starts_with("magis_core_candidate_outcomes{")));

    // The trace identity multiset (everything except ts/dur/thread) is
    // identical: same spans, same events, same deterministic payloads.
    assert_eq!(serial.identities, parallel.identities);
    assert!(!serial.identities.is_empty());

    // The taxonomy is present: spans for expansion, candidate
    // evaluation, scheduling, and cost simulation; a stop event.
    for prefix in [
        "span:magis_core/expansion[",
        "span:magis_core/candidate_eval[",
        "span:magis_sched/full_schedule[",
        "span:magis_sim/evaluate",
        "event:magis_core/stop[",
    ] {
        assert!(
            serial.identities.iter().any(|id| id.starts_with(prefix)),
            "missing trace records with prefix {prefix}"
        );
    }

    // And the search results themselves still agree (the instrumented
    // build keeps the PR-1 determinism guarantee).
    assert_eq!(serial.res.best.cost(), parallel.res.best.cost());
    assert_eq!(serial.res.stats.evaluated, parallel.res.stats.evaluated);
}

/// The service extends the determinism contract across its worker
/// pool: the same job set run under pools of 1 and 4 workers produces
/// bit-identical count metrics (counters + histogram counts) and the
/// same trace identity multiset — only wall-time measurements differ.
#[test]
fn serve_counts_and_trace_set_identical_across_worker_pools() {
    use magis::serve::{Client, JobSpec, ServeConfig, Server};

    struct ServeCapture {
        counters: BTreeMap<String, u64>,
        histogram_counts: BTreeMap<String, u64>,
        identities: Vec<String>,
        results: Vec<String>,
    }

    fn serve_run(workers: usize) -> ServeCapture {
        let dir = std::env::temp_dir()
            .join(format!("magis_obs_pool{workers}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        default_registry().reset();
        let sink = Arc::new(BufferSink::new());
        trace::install(sink.clone());

        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            state_dir: dir.clone(),
            workers,
            result_cache: 0,
            ..ServeConfig::default()
        })
        .expect("bind");
        let handle = server.handle().expect("handle");
        let join = std::thread::spawn(move || server.run());

        // Three distinct deterministic jobs (candidate-cap stops), all
        // in flight at once so a 4-worker pool actually overlaps them.
        let mut c = Client::connect(handle.addr()).expect("connect");
        let ids: Vec<u64> = [24usize, 32, 40]
            .iter()
            .map(|&cap| {
                let spec = JobSpec {
                    workload: Some("unet".into()),
                    scale: 0.15,
                    max_candidates: Some(cap),
                    budget_ms: 3_600_000,
                    threads: 1,
                    ..JobSpec::default()
                };
                c.submit_nowait(&spec).expect("submit")
            })
            .collect();
        let mut results = Vec::new();
        for id in ids {
            loop {
                let st = c.status(id).expect("status");
                match st.get("state").and_then(magis::obs::json::Json::as_str) {
                    Some("done") => {
                        let r = magis::serve::JobResult::from_json(
                            st.get("result").expect("result"),
                        )
                        .expect("result parses");
                        results.push(r.identity_key());
                        break;
                    }
                    Some("failed") | Some("interrupted") => {
                        panic!("job {id} settled badly: {}", st.render())
                    }
                    _ => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        }
        handle.shutdown();
        join.join().unwrap().unwrap();
        trace::uninstall();

        let mut identities: Vec<String> =
            sink.take().iter().map(TraceEvent::identity).collect();
        identities.sort();
        let snap = default_registry().snapshot();
        let _ = std::fs::remove_dir_all(&dir);
        ServeCapture {
            counters: snap.counters,
            histogram_counts: snap
                .histograms
                .iter()
                .map(|(k, &(n, _))| (k.clone(), n))
                .collect(),
            identities,
            results,
        }
    }

    let _g = obs_lock();
    let single = serve_run(1);
    let pooled = serve_run(4);

    // Count metrics: every counter (serve + core, labeled included)
    // and every histogram count is bit-identical.
    assert_eq!(single.counters, pooled.counters);
    assert_eq!(single.histogram_counts, pooled.histogram_counts);
    assert_eq!(single.counters["magis_serve_jobs_accepted"], 3);
    assert_eq!(single.counters["magis_serve_jobs_completed"], 3);
    assert_eq!(single.counters["magis_serve_result_cache_misses"], 3);
    assert_eq!(single.histogram_counts["magis_serve_job_seconds"], 3);
    assert_eq!(single.histogram_counts["magis_serve_queue_wait_seconds"], 3);

    // Trace identity multiset: same supervision events (admitted /
    // queue_wait / run / job_done, each tagged job = id) and the same
    // per-job search records, regardless of pool size.
    assert_eq!(single.identities, pooled.identities);
    for prefix in [
        "event:magis_serve/admitted[",
        "span:magis_serve/queue_wait[",
        "span:magis_serve/run[",
        "event:magis_serve/job_done[",
        "event:magis_serve/drained",
        "span:magis_core/expansion[",
    ] {
        assert!(
            single.identities.iter().any(|id| id.starts_with(prefix)),
            "missing trace records with prefix {prefix}"
        );
    }

    // And the job results themselves are bit-identical.
    assert_eq!(single.results, pooled.results);
}

#[test]
fn trace_events_round_trip_through_jsonl() {
    let _g = obs_lock();
    let cap = traced_run(2);
    assert!(!cap.events.is_empty());
    for ev in &cap.events {
        let line = ev.to_jsonl();
        let back = TraceEvent::parse_line(&line)
            .unwrap_or_else(|e| panic!("line failed to parse back: {e}\n{line}"));
        // Full fidelity: identity AND the volatile envelope survive.
        assert_eq!(back.identity(), ev.identity());
        assert_eq!(back.ts_us, ev.ts_us);
        assert_eq!(back.dur_us, ev.dur_us);
        assert_eq!(back.thread, ev.thread);
    }
}

#[test]
fn timeline_is_deterministic_and_serializes() {
    let _g = obs_lock();
    let serial = traced_run(1);
    let parallel = traced_run(4);
    let (a, b) = (&serial.res.timeline, &parallel.res.timeline);

    // Per-expansion points: every field but the wall-clock one agrees.
    assert_eq!(a.points.len(), b.points.len());
    assert!(!a.points.is_empty());
    for (p, q) in a.points.iter().zip(&b.points) {
        assert_eq!(
            (p.expansion, p.evaluated, p.best_peak_bytes, p.frontier_size, p.pareto_size),
            (q.expansion, q.evaluated, q.best_peak_bytes, q.frontier_size, q.pareto_size)
        );
        assert_eq!(p.best_latency.to_bits(), q.best_latency.to_bits());
    }
    assert_eq!(a.points.last().unwrap().expansion, serial.res.stats.expanded as u64);

    // Pareto evolution and the final memory profile are identical.
    assert_eq!(a.pareto.len(), b.pareto.len());
    for (p, q) in a.pareto.iter().zip(&b.pareto) {
        assert_eq!(p.expansion, q.expansion);
        assert_eq!(p.points, q.points);
    }
    assert_eq!(a.memory_profile, b.memory_profile);
    assert!(!a.memory_profile.is_empty());

    // Per-family stats: all counts and deltas agree; only the measured
    // evaluation time may differ.
    assert_eq!(a.families.keys().collect::<Vec<_>>(), b.families.keys().collect::<Vec<_>>());
    let mut proposed = 0u64;
    for (fam, fa) in &a.families {
        let fb = &b.families[fam];
        assert_eq!(
            (fa.proposed, fa.accepted, fa.rejected, fa.mem_delta_bytes),
            (fb.proposed, fb.accepted, fb.rejected, fb.mem_delta_bytes),
            "family {fam}"
        );
        assert_eq!(fa.lat_delta.to_bits(), fb.lat_delta.to_bits(), "family {fam}");
        proposed += fa.proposed;
    }
    assert!(proposed > 0);

    // The whole timeline serializes to JSON that parses back.
    let text = a.to_json().render();
    let parsed = magis::obs::json::parse(&text).expect("timeline JSON parses");
    let pts = parsed.get("points").and_then(|j| j.as_arr()).expect("points array");
    assert_eq!(pts.len(), a.points.len());
}
