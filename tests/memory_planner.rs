//! Property and differential tests for the allocator-aware memory
//! planner ([`magis::sim::memory_plan`]).
//!
//! The planner assigns every sized storage root a concrete device
//! offset via a best-fit free list with block coalescing, and its
//! contracts are checked here from the outside:
//!
//! * **soundness** — no two placements ever overlap in
//!   (time × address) space;
//! * **dominance** — the planned high-water mark is never below the
//!   liveness-sum peak, and the plan's recorded liveness peak equals
//!   the profiler's;
//! * **reuse** — a fully-freed region is coalesced and reclaimed by a
//!   later allocation instead of growing the heap;
//! * **delta exactness** — [`magis::sim::memory_plan_delta`] against
//!   any parent plan is bit-identical to a from-scratch
//!   [`magis::sim::memory_plan`], across the bench workloads and a
//!   randomized rewrite sequence on NASNet-like random DNNs.

use magis::graph::op::{OpKind, UnaryKind};
use magis::models::{random_dnn, RandomDnnConfig, Workload};
use magis::prelude::*;
use magis::sched::{full_schedule, SchedConfig};
use magis::sim::{memory_plan, memory_plan_delta, memory_profile, MemoryPlan};
use magis_util::rng::{Rng, SeedableRng, SmallRng};

/// Schedules `g` and plans it, asserting the planner's internal
/// consistency along the way. Returns `(order, plan)`.
fn plan_of(g: &Graph) -> (Vec<NodeId>, MemoryPlan) {
    let order = full_schedule(g, &SchedConfig::default());
    let plan = memory_plan(g, &order).expect("plan");
    (order, plan)
}

/// The small graphs the property tests sweep: a few random NASNet-like
/// DNNs plus two bench workloads at small scale.
fn property_graphs() -> Vec<(String, Graph)> {
    let mut out = Vec::new();
    let cfg = RandomDnnConfig { batch: 2, channels: 8, hw: 8, cells: 3, blocks: 3 };
    for seed in 0..5u64 {
        out.push((format!("random_dnn(seed={seed})"), random_dnn(&cfg, seed)));
    }
    out.push(("unet@0.1".into(), Workload::UNet.build(0.1).graph));
    out.push(("bert@0.1".into(), Workload::BertBase.build(0.1).graph));
    out
}

#[test]
fn planned_allocations_never_overlap_in_time_and_address() {
    for (name, g) in property_graphs() {
        let (_, plan) = plan_of(&g);
        let allocs = plan.allocations();
        assert!(!allocs.is_empty(), "{name}: plan places something");
        for (i, a) in allocs.iter().enumerate() {
            assert!(a.bytes > 0, "{name}: only sized roots are placed");
            assert!(a.alloc_step <= a.free_step, "{name}: live interval is well-formed");
            assert!(
                a.offset + a.bytes <= plan.planned_peak_bytes,
                "{name}: every placement fits under the high-water mark"
            );
            for b in &allocs[i + 1..] {
                let time_overlap = a.alloc_step <= b.free_step && b.alloc_step <= a.free_step;
                if !time_overlap {
                    continue;
                }
                let addr_disjoint =
                    a.offset + a.bytes <= b.offset || b.offset + b.bytes <= a.offset;
                assert!(
                    addr_disjoint,
                    "{name}: roots {:?} and {:?} are live together but overlap in \
                     address space ([{}, {}) vs [{}, {}))",
                    a.root,
                    b.root,
                    a.offset,
                    a.offset + a.bytes,
                    b.offset,
                    b.offset + b.bytes
                );
            }
        }
    }
}

#[test]
fn planned_peak_dominates_liveness_peak() {
    for (name, g) in property_graphs() {
        let (order, plan) = plan_of(&g);
        let prof = memory_profile(&g, &order);
        assert_eq!(
            plan.liveness_peak_bytes, prof.peak_bytes,
            "{name}: the plan's liveness peak is the profiler's peak"
        );
        assert!(
            plan.planned_peak_bytes >= plan.liveness_peak_bytes,
            "{name}: fragmentation can only add memory ({} < {})",
            plan.planned_peak_bytes,
            plan.liveness_peak_bytes
        );
        assert!(plan.fragmentation_ratio() >= 1.0, "{name}: ratio >= 1");
        let max_end = plan.allocations().iter().map(|a| a.offset + a.bytes).max().unwrap_or(0);
        assert_eq!(plan.planned_peak_bytes, max_end, "{name}: peak is the max placement end");
    }
}

#[test]
fn coalescing_reclaims_a_fully_freed_region() {
    // A chain of equal-sized activations: once the first few tensors
    // die, their (coalesced) region must serve later allocations, so
    // offsets repeat and the heap stays bounded instead of growing by
    // one tensor per step.
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([1024], "x");
    let mut t = b.relu(x);
    for _ in 0..8 {
        t = b.relu(t);
    }
    let g = b.finish();
    let (_, plan) = plan_of(&g);
    let allocs = plan.allocations();
    let total: u64 = allocs.iter().map(|a| a.bytes).sum();
    assert!(
        plan.planned_peak_bytes < total,
        "offsets were reused: peak {} < total allocated {total}",
        plan.planned_peak_bytes
    );
    let reused = allocs.iter().enumerate().any(|(i, a)| {
        allocs[i + 1..].iter().any(|b| b.offset == a.offset && b.alloc_step > a.free_step)
    });
    assert!(reused, "some later allocation reoccupies a freed offset");
    // A pure same-size chain fragments nothing: best-fit lands each new
    // tensor exactly in the hole the dead one left.
    assert_eq!(
        plan.planned_peak_bytes, plan.liveness_peak_bytes,
        "equal-size chain plans without fragmentation"
    );
}

/// Inserts a relu between a random interior node and one of its users
/// — the smallest schedule-perturbing rewrite.
fn insert_relu_twin(g: &Graph, rng: &mut SmallRng) -> Option<Graph> {
    let interior: Vec<NodeId> =
        g.node_ids().filter(|&v| !g.pre(v).is_empty() && !g.suc(v).is_empty()).collect();
    if interior.is_empty() {
        return None;
    }
    let v = interior[rng.gen_range(0..interior.len())];
    let users = g.suc(v);
    let user = users[rng.gen_range(0..users.len())];
    let mut txn = GraphTxn::begin(g);
    let inserted = txn.add(OpKind::Unary(UnaryKind::Relu), &[v]).ok()?;
    txn.replace_input(user, v, inserted);
    txn.validate().ok()?;
    Some(txn.commit().0)
}

/// Splits a random interior node's computation into two sliced halves
/// stitched back with a concat — an F-Trans-shaped rewrite that
/// reshuffles lifetimes around the split point.
fn split_node(g: &Graph, rng: &mut SmallRng) -> Option<Graph> {
    let candidates: Vec<NodeId> = g
        .node_ids()
        .filter(|&v| {
            !g.pre(v).is_empty()
                && !g.suc(v).is_empty()
                && g.pre(v).len() == 1
                && g.node(v).meta.shape.dims().first().is_some_and(|&n| n >= 2)
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let v = candidates[rng.gen_range(0..candidates.len())];
    let src = g.pre(v)[0];
    let user = g.suc(v)[0];
    let n = g.node(v).meta.shape.dims()[0];
    let half = n / 2;
    let mut txn = GraphTxn::begin(g);
    let s0 = txn.add(OpKind::Slice { axis: 0, start: 0, len: half }, &[src]).ok()?;
    let s1 = txn.add(OpKind::Slice { axis: 0, start: half, len: n - half }, &[src]).ok()?;
    let r0 = txn.add(g.node(v).op.clone(), &[s0]).ok()?;
    let r1 = txn.add(g.node(v).op.clone(), &[s1]).ok()?;
    let cat = txn.add(OpKind::Concat { axis: 0 }, &[r0, r1]).ok()?;
    txn.replace_input(user, v, cat);
    txn.validate().ok()?;
    Some(txn.commit().0)
}

/// Asserts that planning `g_new` as a delta against `parent` is
/// bit-identical to planning it from scratch, and returns the plan.
fn assert_delta_exact(name: &str, g_new: &Graph, parent: &MemoryPlan) -> MemoryPlan {
    let order = full_schedule(g_new, &SchedConfig::default());
    let (_, lt) = magis::sim::memory_profile_lifetimes(g_new, &order).expect("profile");
    let full = memory_plan(g_new, &order).expect("full plan");
    let delta = memory_plan_delta(g_new, &order, &lt, parent).expect("delta plan");
    assert_eq!(delta, full, "{name}: delta re-plan bit-identical to full re-plan");
    full
}

#[test]
fn delta_replanning_matches_full_on_bench_models() {
    for (w, scale) in [
        (Workload::UNet, 0.1),
        (Workload::BertBase, 0.1),
        (Workload::ResNet50, 0.08),
        (Workload::VitBase, 0.08),
        (Workload::UNetPP, 0.08),
        (Workload::GptNeo13B, 0.05),
        (Workload::Btlm3B, 0.05),
    ] {
        let g = w.build(scale).graph;
        let (_, parent) = plan_of(&g);
        let mut rng = SmallRng::seed_from_u64(0xBEEF);
        let g_new = insert_relu_twin(&g, &mut rng).expect("bench graphs have interior nodes");
        assert_delta_exact(w.label(), &g_new, &parent);
    }
}

#[test]
fn delta_replanning_matches_full_across_a_randomized_rewrite_sequence() {
    for seed in 0..3u64 {
        let cfg = RandomDnnConfig { batch: 2, channels: 8, hw: 8, cells: 3, blocks: 3 };
        let mut g = random_dnn(&cfg, seed);
        let (_, mut plan) = plan_of(&g);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1FF);
        let mut applied = 0;
        for _ in 0..12 {
            let mutated = if rng.gen_bool(0.5) {
                insert_relu_twin(&g, &mut rng)
            } else {
                split_node(&g, &mut rng)
            };
            let Some(g_new) = mutated else { continue };
            // Each step deltas against the previous step's plan, so the
            // divergence point wanders through the event list.
            plan = assert_delta_exact(&format!("random_dnn(seed={seed})"), &g_new, &plan);
            g = g_new;
            applied += 1;
        }
        assert!(applied >= 6, "seed {seed}: the rewrite sequence did real work ({applied})");
    }
}
