//! Checkpoint/resume suite: a search that periodically serializes its
//! state can be killed at any point and resumed from the last
//! checkpoint to a valid incumbent no worse than the checkpointed one.

use magis::core::budget::SearchBudget;
use magis::core::checkpoint::SearchCheckpoint;
use magis::core::optimizer::{self, CheckpointPolicy, Objective, OptimizerConfig};
use magis::prelude::*;
use magis::sched::validate_schedule;
use magis::sim::MemObjective;
use std::path::PathBuf;
use std::time::Duration;

fn seed_state() -> (Graph, MState) {
    let tg = Workload::UNet.build(0.15);
    let init = MState::initial(tg.graph.clone(), &EvalContext::default());
    (tg.graph, init)
}

/// A unique scratch path per test (tests run concurrently in one
/// process; the process id keeps parallel `cargo test` runs apart).
fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("magis_ckpt_{}_{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn capped(objective: Objective, max_evals: usize, threads: usize) -> OptimizerConfig {
    OptimizerConfig::new(objective)
        .with_budget(Duration::from_secs(3600))
        .with_max_evals(max_evals)
        .with_threads(threads)
}

#[test]
fn checkpoint_file_round_trips_the_search_state() {
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let path = scratch("roundtrip");
    let cfg = capped(obj, 40, 1)
        .with_checkpoint(CheckpointPolicy::new(path.clone()).with_every(8));
    let res = optimizer::optimize(g, &cfg);
    assert!(res.stats.checkpoints_written >= 1, "periodic + final writes happened");
    assert_eq!(res.stats.checkpoint_failures, 0);

    let ckpt = SearchCheckpoint::read_from(&path).expect("checkpoint parses");
    // The final write snapshots the finished search.
    assert_eq!(ckpt.best_cost, res.best.cost());
    assert_eq!(ckpt.counters.evaluated as usize, res.stats.evaluated);
    assert_eq!(ckpt.counters.expanded as usize, res.stats.expanded);
    assert_eq!(ckpt.seed_cost, init.cost());

    // The checkpointed incumbent restores to a valid, re-simulable
    // state with the exact recorded cost.
    let best = ckpt.restore_state(&EvalContext::default()).expect("restores");
    assert_eq!(best.cost(), ckpt.best_cost);
    best.eval.graph.validate().expect("restored graph validates");
    validate_schedule(&best.eval.graph, &best.eval.order).expect("restored schedule validates");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_from_mid_search_checkpoint_is_no_worse() {
    // Phase 1: a short run, as if killed after 18 evaluations.
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let path = scratch("midsearch");
    let cfg = capped(obj, 18, 1)
        .with_checkpoint(CheckpointPolicy::new(path.clone()).with_every(4));
    let partial = optimizer::optimize(g, &cfg);
    let ckpt = SearchCheckpoint::read_from(&path).expect("checkpoint parses");

    // Phase 2: resume with a larger budget. The incumbent may only
    // improve on what the checkpoint recorded.
    let res = optimizer::resume(&ckpt, &capped(obj, 60, 1)).expect("resume succeeds");
    assert!(res.stats.resumed);
    assert!(
        res.best.eval.peak_bytes <= ckpt.best_cost.0,
        "resumed incumbent {} must be no worse than checkpointed {}",
        res.best.eval.peak_bytes,
        ckpt.best_cost.0
    );
    assert!(res.best.eval.peak_bytes <= partial.best.eval.peak_bytes);
    assert!(res.best.eval.peak_bytes <= init.eval.peak_bytes);
    assert!(
        res.stats.evaluated >= ckpt.counters.evaluated as usize,
        "counters continue from the checkpoint"
    );
    res.best.eval.graph.validate().expect("incumbent graph validates");
    validate_schedule(&res.best.eval.graph, &res.best.eval.order)
        .expect("incumbent schedule validates");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_is_deterministic_across_thread_counts() {
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let path = scratch("threads");
    let cfg = capped(obj, 18, 1)
        .with_checkpoint(CheckpointPolicy::new(path.clone()).with_every(6));
    let _ = optimizer::optimize(g, &cfg);
    let ckpt = SearchCheckpoint::read_from(&path).expect("checkpoint parses");

    let serial = optimizer::resume(&ckpt, &capped(obj, 50, 1)).expect("serial resume");
    let parallel = optimizer::resume(&ckpt, &capped(obj, 50, 4)).expect("parallel resume");
    assert_eq!(serial.best.cost(), parallel.best.cost());
    assert_eq!(serial.stats.evaluated, parallel.stats.evaluated);
    assert_eq!(serial.stats.expanded, parallel.stats.expanded);
    let sh: Vec<_> = serial.history.iter().map(|p| (p.peak_bytes, p.latency)).collect();
    let ph: Vec<_> = parallel.history.iter().map(|p| (p.peak_bytes, p.latency)).collect();
    assert_eq!(sh, ph);
    let _ = std::fs::remove_file(&path);
}

/// Fingerprint of everything two runs of the same deterministic
/// search must agree on bit-for-bit.
fn fingerprint(res: &magis::core::optimizer::OptimizeResult) -> String {
    let mut s = format!(
        "cost=({},{:016x}) planned={:?} evaluated={} expanded={} pareto=",
        res.best.eval.peak_bytes,
        res.best.eval.latency.to_bits(),
        res.best.eval.plan.as_ref().map(|p| p.planned_peak_bytes),
        res.stats.evaluated,
        res.stats.expanded,
    );
    for (m, l) in res.pareto.front() {
        s.push_str(&format!("({m},{:016x})", l.to_bits()));
    }
    s
}

/// The tentpole contract: a search killed mid-run and resumed from a
/// frontier checkpoint reproduces the uninterrupted run bit-exactly —
/// under the planned (allocator-aware) objective, where evaluation is
/// most involved.
#[test]
fn frontier_resume_reproduces_uninterrupted_run_bit_exactly() {
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let planned = |max: usize, threads: usize| {
        let mut cfg = capped(obj, usize::MAX, threads)
            .with_search_budget(SearchBudget::UNLIMITED.with_candidate_limit(max));
        cfg.ctx.mem_objective = MemObjective::Planned;
        cfg
    };

    // "Kill" after the first expansion boundary past 1 evaluation,
    // with frontier checkpointing on. The candidate limit stops only
    // at expansion boundaries, so this run's evaluated count tells us
    // where the boundary fell; the reference run then targets one
    // evaluation past it, forcing at least one further expansion.
    let path = scratch("frontier_exact");
    let cfg_killed = planned(1, 1)
        .with_checkpoint(CheckpointPolicy::new(path.clone()).with_every(4).with_frontier(true));
    let killed = optimizer::optimize(g.clone(), &cfg_killed);
    let target = killed.stats.evaluated + 1;
    let ckpt = SearchCheckpoint::read_from(&path).expect("frontier checkpoint parses");
    assert!(!ckpt.frontier.is_empty(), "frontier persisted");

    // Reference: one uninterrupted run to the same cumulative target.
    let full = optimizer::optimize(g, &planned(target, 1));
    assert!(full.stats.expanded > killed.stats.expanded, "reference crosses the kill point");

    let resumed = optimizer::resume(&ckpt, &planned(target, 1)).expect("resume succeeds");
    assert!(resumed.stats.resumed);
    assert_eq!(
        fingerprint(&full),
        fingerprint(&resumed),
        "kill + frontier-resume must be indistinguishable from an uninterrupted run"
    );
    let _ = std::fs::remove_file(&path);
}

/// Same contract, resuming with a different thread count: the frontier
/// checkpoint composes with the sorted-batch determinism guarantee.
#[test]
fn frontier_resume_is_bit_exact_across_thread_counts() {
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let cap = |max: usize, threads: usize| {
        capped(obj, usize::MAX, threads)
            .with_search_budget(SearchBudget::UNLIMITED.with_candidate_limit(max))
    };
    let path = scratch("frontier_threads");
    let killed = optimizer::optimize(
        g.clone(),
        &cap(1, 2)
            .with_checkpoint(CheckpointPolicy::new(path.clone()).with_every(3).with_frontier(true)),
    );
    let target = killed.stats.evaluated + 1;
    let full = optimizer::optimize(g, &cap(target, 1));
    let ckpt = SearchCheckpoint::read_from(&path).expect("parses");
    let r1 = optimizer::resume(&ckpt, &cap(target, 1)).expect("serial resume");
    let r4 = optimizer::resume(&ckpt, &cap(target, 4)).expect("parallel resume");
    assert_eq!(fingerprint(&full), fingerprint(&r1));
    assert_eq!(fingerprint(&r1), fingerprint(&r4));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_checkpoints_are_rejected_with_typed_errors() {
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let path = scratch("corrupt");
    let cfg = capped(obj, 12, 1)
        .with_checkpoint(CheckpointPolicy::new(path.clone()).with_every(4));
    let _ = optimizer::optimize(g, &cfg);
    let text = std::fs::read_to_string(&path).expect("checkpoint exists");

    // Truncation (a crash mid-write of a non-atomic writer) and header
    // corruption must both fail to parse — never produce a state.
    for corrupt in [
        text[..text.len() / 2].to_string(),
        text.replacen("magis-checkpoint v4", "magis-checkpoint v9", 1),
        text.replacen("ckpt-end", "", 1),
    ] {
        let p2 = scratch("corrupt2");
        std::fs::write(&p2, corrupt).expect("write corrupt");
        assert!(SearchCheckpoint::read_from(&p2).is_err(), "corrupt checkpoint parsed");
        let _ = std::fs::remove_file(&p2);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_write_failure_is_not_fatal() {
    // An unwritable checkpoint path must not kill the search — it is
    // counted and the search completes normally.
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let bad = PathBuf::from("/nonexistent-dir/magis.ckpt");
    let cfg = capped(obj, 12, 1).with_checkpoint(CheckpointPolicy::new(bad).with_every(4));
    let res = optimizer::optimize(g, &cfg);
    assert!(res.stats.checkpoint_failures >= 1);
    assert_eq!(res.stats.checkpoints_written, 0);
    assert!(res.best.eval.peak_bytes <= init.eval.peak_bytes);
}
