//! Fault-injection suite for the hardened M-Optimizer.
//!
//! A seeded [`FaultPlan`] deterministically injects worker panics,
//! NaN/negative simulated costs, and corrupted rewrites into candidate
//! evaluation. For every plan the search must
//!
//! * complete without unwinding into the caller,
//! * return an incumbent whose graph and schedule validate cleanly,
//! * never do worse than the unoptimized seed state,
//! * account for every fault in the hardening counters, and
//! * stay bit-identical between `threads = 1` and `threads = 4`
//!   (fault keys derive from expansion number and sorted candidate
//!   index, never from thread identity).

use magis::core::optimizer::{self, Objective, OptimizerConfig, ParanoiaLevel, StopReason};
use magis::prelude::*;
use magis::sched::validate_schedule;
use magis_util::fault::{FaultPlan, FaultSite};
use std::sync::Once;
use std::time::Duration;

/// Injected panics are expected and caught by the sandbox; silence
/// their default-hook stderr spew while forwarding every real panic
/// (test assertion failures included) to the original hook.
fn silence_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected fault:"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn seed_state() -> (Graph, MState) {
    let tg = Workload::UNet.build(0.15);
    let init = MState::initial(tg.graph.clone(), &EvalContext::default());
    (tg.graph, init)
}

fn capped(objective: Objective, threads: usize, plan: FaultPlan) -> OptimizerConfig {
    OptimizerConfig::new(objective)
        .with_budget(Duration::from_secs(3600))
        .with_max_evals(60)
        .with_threads(threads)
        .with_fault_plan(plan)
}

/// Everything a fault-injected trajectory determines.
#[derive(Debug, PartialEq)]
struct Run {
    best: (u64, f64),
    history: Vec<(u64, f64)>,
    evaluated: usize,
    expanded: usize,
    panicked: usize,
    cost_rejections: usize,
    invariant_rejections: usize,
    quarantined_candidates: usize,
    strikes: Vec<(u8, u32)>,
    quarantined_families: Vec<u8>,
    stop: StopReason,
}

fn run(g: &Graph, objective: Objective, threads: usize, plan: FaultPlan) -> Run {
    let res = optimizer::optimize(g.clone(), &capped(objective, threads, plan));
    Run {
        best: res.best.cost(),
        history: res.history.iter().map(|p| (p.peak_bytes, p.latency)).collect(),
        evaluated: res.stats.evaluated,
        expanded: res.stats.expanded,
        panicked: res.stats.panicked,
        cost_rejections: res.stats.cost_rejections,
        invariant_rejections: res.stats.invariant_rejections,
        quarantined_candidates: res.stats.quarantined_candidates,
        strikes: res.stats.quarantine_strikes.clone(),
        quarantined_families: res.stats.quarantined_families.clone(),
        stop: res.stats.stop_reason,
    }
}

/// The core contract: for the given plan the search survives, returns
/// a valid incumbent no worse than the seed, accounts for the faults
/// consistently, and is thread-count invariant.
fn assert_survives(plan: FaultPlan) -> Run {
    silence_injected_panics();
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };

    let serial = run(&g, obj, 1, plan);
    let parallel = run(&g, obj, 4, plan);
    assert_eq!(serial, parallel, "fault trajectory must not depend on thread count");

    // Re-run to rebuild the state (Run carries only the cost); the
    // search is deterministic so this is the same incumbent.
    let res = optimizer::optimize(g.clone(), &capped(obj, 1, plan));
    res.best.eval.graph.validate().expect("incumbent graph validates");
    validate_schedule(&res.best.eval.graph, &res.best.eval.order)
        .expect("incumbent schedule validates");
    assert!(
        res.best.eval.peak_bytes <= init.eval.peak_bytes,
        "incumbent must be no worse than the seed: {} vs {}",
        res.best.eval.peak_bytes,
        init.eval.peak_bytes
    );

    // Accounting: every strike comes from a caught panic or an
    // invariant rejection, nothing else.
    let total_strikes: u32 = serial.strikes.iter().map(|&(_, n)| n).sum();
    assert_eq!(
        total_strikes as usize,
        serial.panicked + serial.invariant_rejections,
        "strikes must equal panics + invariant rejections"
    );
    serial
}

#[test]
fn survives_every_single_site_plan() {
    for (i, site) in FaultSite::ALL.into_iter().enumerate() {
        let plan = FaultPlan::new(0xC0FFEE + i as u64).with_rate(site, 0.15);
        let r = assert_survives(plan);
        assert!(r.evaluated > 0, "{site:?}: the search still did real work");
    }
}

#[test]
fn survives_a_combined_plan() {
    let mut plan = FaultPlan::new(0xBAD5EED);
    for site in FaultSite::ALL {
        plan = plan.with_rate(site, 0.08);
    }
    let r = assert_survives(plan);
    assert!(r.evaluated > 0);
}

#[test]
fn panic_plan_counts_panics() {
    let plan = FaultPlan::new(7).with_rate(FaultSite::EvalPanic, 0.5);
    let r = assert_survives(plan);
    assert!(r.panicked > 0, "a 50% panic rate must trip the sandbox");
}

#[test]
fn bad_cost_plans_are_rejected_not_quarantined() {
    // NaN / negative latencies are caught by the always-on cost
    // validation; they reject the candidate but do not strike the
    // rule family (the rule is fine, the simulator output is not).
    for site in [FaultSite::NanCost, FaultSite::NegativeCost] {
        let plan = FaultPlan::new(11).with_rate(site, 0.5);
        let r = assert_survives(plan);
        assert!(r.cost_rejections > 0, "{site:?}: bad costs must be rejected");
        assert_eq!(r.panicked, 0, "{site:?}: bad costs are not panics");
    }
}

#[test]
fn corrupt_rewrites_are_caught_by_paranoia() {
    // A duplicated schedule entry is only visible to invariant
    // enforcement. Under `ParanoiaLevel::All` every corrupted
    // candidate is rejected and strikes its family.
    silence_injected_panics();
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let plan = FaultPlan::new(23).with_rate(FaultSite::CorruptRewrite, 0.5);
    let cfg = capped(obj, 1, plan).with_paranoia(ParanoiaLevel::All);
    let res = optimizer::optimize(g, &cfg);
    assert!(
        res.stats.invariant_rejections > 0,
        "50% corrupted rewrites must trip invariant enforcement"
    );
    res.best.eval.graph.validate().expect("incumbent graph validates");
    validate_schedule(&res.best.eval.graph, &res.best.eval.order)
        .expect("incumbent schedule validates");
    assert!(res.best.eval.peak_bytes <= init.eval.peak_bytes);
}

#[test]
fn total_panic_storm_quarantines_and_returns_the_seed() {
    // Rate 1.0: every candidate evaluation panics. After the strike
    // threshold every rule family is quarantined, the queue runs dry,
    // and the search reports a fault storm — with the seed state as
    // the (valid) incumbent.
    silence_injected_panics();
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let plan = FaultPlan::new(99).with_rate(FaultSite::EvalPanic, 1.0);
    for threads in [1, 4] {
        let res = optimizer::optimize(g.clone(), &capped(obj, threads, plan));
        assert_eq!(res.stats.stop_reason, StopReason::FaultStorm, "threads={threads}");
        assert!(res.stats.panicked > 0);
        assert!(!res.stats.quarantined_families.is_empty());
        assert_eq!(res.stats.evaluated, 0, "nothing survives a total storm");
        assert_eq!(res.best.cost(), init.cost(), "the seed remains the incumbent");
        res.best.eval.graph.validate().expect("seed graph validates");
    }
}

#[test]
fn quarantine_can_be_disabled() {
    // Threshold 0 disables quarantining: the same storm then burns the
    // whole eval budget on panics instead of shutting families down.
    silence_injected_panics();
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let plan = FaultPlan::new(99).with_rate(FaultSite::EvalPanic, 1.0);
    let cfg = capped(obj, 1, plan).with_quarantine_threshold(0);
    let res = optimizer::optimize(g, &cfg);
    assert_eq!(res.stats.quarantined_candidates, 0);
    assert!(res.stats.quarantined_families.is_empty());
    assert!(res.stats.panicked > 0);
    assert_eq!(res.best.cost(), init.cost());
}

#[test]
fn faultless_plan_changes_nothing() {
    // An all-zero-rate plan must be a no-op: identical trajectory to a
    // run with no plan at all.
    let (g, init) = seed_state();
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let with_plan = run(&g, obj, 1, FaultPlan::new(5));
    let cfg = OptimizerConfig::new(obj)
        .with_budget(Duration::from_secs(3600))
        .with_max_evals(60)
        .with_threads(1);
    let res = optimizer::optimize(g, &cfg);
    assert_eq!(with_plan.best, res.best.cost());
    assert_eq!(with_plan.evaluated, res.stats.evaluated);
    assert_eq!(with_plan.panicked, 0);
    assert_eq!(with_plan.cost_rejections, 0);
}
