//! End-to-end integration: build each workload family, run the
//! optimizer in both modes, and check the paper's headline properties
//! (peak reduction under a latency budget; constraint satisfaction;
//! schedule validity of the winning state).

use magis::prelude::*;
use std::time::Duration;

fn quick(objective: Objective) -> OptimizerConfig {
    OptimizerConfig::new(objective)
        .with_budget(Duration::from_secs(6))
        .with_max_evals(600)
}

fn check_state_consistency(s: &MState) {
    s.eval.graph.validate().expect("eval graph is well-formed");
    assert!(
        magis::graph::algo::is_topo_order(&s.eval.graph, &s.eval.order),
        "schedule is a valid topological order"
    );
    // Re-simulating the stored schedule reproduces the stored metrics.
    let ev = evaluate(&s.eval.graph, &s.eval.order, &CostModel::default());
    assert_eq!(ev.peak_bytes, s.eval.peak_bytes);
    assert!((ev.latency - s.eval.latency).abs() < 1e-9);
}

fn run_memory_mode(w: Workload, scale: f64, lat_factor: f64) -> (f64, MState) {
    let tg = w.build(scale);
    let ctx = EvalContext::default();
    let init = MState::initial(tg.graph.clone(), &ctx);
    let cfg = quick(Objective::MinMemory { lat_limit: init.eval.latency * lat_factor });
    let res = optimize(tg.graph, &cfg);
    check_state_consistency(&res.best);
    assert!(
        res.best.eval.latency <= init.eval.latency * lat_factor * 1.0001,
        "{}: latency constraint respected",
        w.label()
    );
    (res.best.eval.peak_bytes as f64 / init.eval.peak_bytes as f64, res.best)
}

#[test]
fn unet_memory_mode_improves_strongly() {
    // The paper's strongest workload class for MAGIS (§7.2.1). At this
    // scale kernel-launch overheads weigh more than on the real card,
    // so the threshold is looser than the paper's 15-50%.
    let (ratio, _) = run_memory_mode(Workload::UNet, 0.3, 1.10);
    assert!(ratio < 0.85, "U-Net memory ratio {ratio} under 10% latency overhead");
}

#[test]
fn bert_memory_mode_improves() {
    let (ratio, _) = run_memory_mode(Workload::BertBase, 0.2, 1.10);
    assert!(ratio < 0.9, "BERT memory ratio {ratio}");
}

#[test]
fn resnet_memory_mode_improves() {
    let (ratio, _) = run_memory_mode(Workload::ResNet50, 0.15, 1.10);
    assert!(ratio < 0.95, "ResNet memory ratio {ratio}");
}

#[test]
fn latency_mode_meets_memory_limit() {
    let tg = Workload::UNet.build(0.3);
    let ctx = EvalContext::default();
    let init = MState::initial(tg.graph.clone(), &ctx);
    let limit = (init.eval.peak_bytes as f64 * 0.8) as u64;
    let cfg = quick(Objective::MinLatency { mem_limit: limit });
    let res = optimize(tg.graph, &cfg);
    check_state_consistency(&res.best);
    assert!(res.best.eval.peak_bytes <= limit, "memory constraint met");
}

#[test]
fn gpt_scaled_optimizes() {
    let (ratio, best) = run_memory_mode(Workload::GptNeo13B, 0.12, 1.15);
    assert!(ratio < 1.0, "GPT memory ratio {ratio}");
    // The LLM's famously huge logits/activations should appear in some
    // transformed form: swap, remat, or fission must have fired.
    let transformed = best.eval.graph.len() != best.base.len()
        || best
            .base
            .node_ids()
            .any(|v| best.base.node(v).op.is_swap() || best.base.node(v).name == "remat");
    assert!(transformed, "some transformation applied");
}

#[test]
fn pareto_points_are_consistent() {
    let tg = Workload::UNet.build(0.25);
    let ctx = EvalContext::default();
    let init = MState::initial(tg.graph.clone(), &ctx);
    let cfg = quick(Objective::MinMemory { lat_limit: init.eval.latency * 1.3 });
    let res = optimize(tg.graph, &cfg);
    let front = res.pareto.front();
    assert!(!front.is_empty());
    // The front must contain a point at least as good as the incumbent.
    assert!(front.iter().any(|&(m, _)| m <= res.best.eval.peak_bytes));
}
