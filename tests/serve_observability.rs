//! Service-level observability: the `magis_serve_*` metric registry
//! stays in lock-step with its DESIGN.md documentation, `watch`
//! subscribers can attach mid-flight and stream monotone progress
//! frames, and watchers — connected, disconnected, or absent — never
//! perturb the search result.

use magis::obs::json::Json;
use magis::obs::metrics::default_registry;
use magis::serve::{Client, JobResult, JobSpec, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("magis_sobs_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A small UNet job with a deterministic stop (candidate cap).
fn unet_spec(max_candidates: usize) -> JobSpec {
    JobSpec {
        workload: Some("unet".into()),
        scale: 0.15,
        max_candidates: Some(max_candidates),
        budget_ms: 3_600_000, // the soft budget must never fire here
        threads: 1,
        ..JobSpec::default()
    }
}

fn start(
    mut cfg: ServeConfig,
) -> (magis::serve::ServerHandle, thread::JoinHandle<std::io::Result<()>>) {
    cfg.addr = "127.0.0.1:0".into();
    let server = Server::bind(cfg).expect("bind");
    let handle = server.handle().expect("handle");
    let join = thread::spawn(move || server.run());
    (handle, join)
}

/// Polls `status` until the job settles; returns its [`JobResult`].
fn wait_done(addr: &str, id: u64) -> JobResult {
    let mut c = Client::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let st = c.status(id).expect("status");
        match st.get("state").and_then(Json::as_str) {
            Some("done") => {
                return JobResult::from_json(st.get("result").expect("result"))
                    .expect("result parses")
            }
            Some("failed") | Some("interrupted") => {
                panic!("job {id} settled badly: {}", st.render())
            }
            _ => {
                assert!(Instant::now() < deadline, "job {id} never settled");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Every `magis_serve_*` metric documented in DESIGN.md exists in the
/// live registry, every registered one is documented, and all of them
/// follow the `magis_<crate>_<noun>` naming convention.
#[test]
fn design_doc_and_registry_agree_on_serve_metrics() {
    // Binding a server registers the full magis_serve_* family.
    let dir = scratch("parity");
    let (handle, join) = start(ServeConfig {
        state_dir: dir.clone(),
        workers: 1,
        ..ServeConfig::default()
    });

    let snap = default_registry().snapshot();
    let mut registered: Vec<String> = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
        .filter(|k| k.starts_with("magis_serve_"))
        .map(|k| k.split('{').next().unwrap().to_string())
        .collect();
    registered.sort();
    registered.dedup();
    assert!(!registered.is_empty(), "server registered no magis_serve_* metrics");

    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md"))
        .expect("DESIGN.md");
    let mut documented: Vec<String> = design
        .split('`')
        .filter(|tok| {
            tok.starts_with("magis_serve_")
                && tok.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
        .map(str::to_string)
        .collect();
    documented.sort();
    documented.dedup();
    // The doc prose may mention event names etc.; the metric names are
    // exactly the backticked magis_serve_ tokens, so the sets must
    // coincide in both directions.
    for name in &registered {
        assert!(
            documented.contains(name),
            "metric {name} is registered but not documented in DESIGN.md"
        );
    }
    for name in &documented {
        assert!(
            registered.contains(name),
            "DESIGN.md documents {name}, but the server does not register it"
        );
    }
    // Naming convention: magis_<crate>_<noun>, lower-snake throughout.
    for name in &registered {
        let noun = name.strip_prefix("magis_serve_").unwrap();
        assert!(!noun.is_empty() && !noun.starts_with('_') && !noun.ends_with('_'), "{name}");
        assert!(
            name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "{name} is not lower-snake"
        );
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Frames streamed to a mid-flight `watch` subscriber are monotone in
/// candidates evaluated, non-increasing in incumbent peak memory, and
/// at least two arrive before the final result.
#[test]
fn watch_attaches_mid_flight_and_frames_are_monotone() {
    let dir = scratch("watch");
    let (handle, join) = start(ServeConfig {
        state_dir: dir.clone(),
        workers: 1,
        result_cache: 0,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();

    let mut submitter = Client::connect(&addr).expect("connect");
    let id = submitter.submit_nowait(&unet_spec(60)).expect("submit");

    // Attach AFTER the job is in flight, from a separate connection.
    let mut watcher = Client::connect(&addr).expect("watch connect");
    let mut snaps: Vec<(u64, u64, u64)> = Vec::new(); // (seq, evaluated, best_peak)
    let out = watcher
        .watch(id, |frame| {
            if frame.get("phase").is_some() {
                snaps.push((
                    frame.get("seq").and_then(Json::as_u64).expect("seq"),
                    frame.get("evaluated").and_then(Json::as_u64).expect("evaluated"),
                    frame.get("best_peak_bytes").and_then(Json::as_u64).expect("peak"),
                ));
            }
        })
        .expect("watch stream");
    let result = out.result.expect("job succeeded");
    assert_eq!(result.stop_reason, "eval-cap-reached", "deterministic stop");

    assert!(
        snaps.len() >= 2,
        "a watched job must stream at least two snapshot frames, got {}",
        snaps.len()
    );
    for w in snaps.windows(2) {
        assert!(w[1].0 > w[0].0, "seq strictly increases: {w:?}");
        assert!(w[1].1 >= w[0].1, "candidates evaluated is monotone: {w:?}");
        assert!(w[1].2 <= w[0].2, "incumbent peak never regresses: {w:?}");
    }
    // The last frame is the search's terminal snapshot and agrees with
    // the result bit-exactly.
    assert_eq!(snaps.last().unwrap().1, result.evaluated);
    assert_eq!(snaps.last().unwrap().2, result.peak_bytes);

    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A watcher that disconnects mid-stream neither stalls nor perturbs
/// the worker: the job's result is bit-identical with 0 watchers and
/// with 3 (one of which drops its socket right after the first frame).
#[test]
fn disconnected_watchers_do_not_perturb_the_result() {
    let run = |watchers: usize| -> JobResult {
        let dir = scratch(&format!("perturb{watchers}"));
        let (handle, join) = start(ServeConfig {
            state_dir: dir.clone(),
            workers: 1,
            result_cache: 0,
            ..ServeConfig::default()
        });
        let addr = handle.addr().to_string();
        let mut c = Client::connect(&addr).expect("connect");
        let id = c.submit_nowait(&unet_spec(40)).expect("submit");

        let mut joins = Vec::new();
        for w in 0..watchers {
            let addr = addr.clone();
            joins.push(thread::spawn(move || {
                if w == 0 {
                    // Rude watcher: ask for the stream, read the ack
                    // and at most one frame, then vanish.
                    let stream = TcpStream::connect(&addr).expect("connect");
                    let mut rd = BufReader::new(stream.try_clone().unwrap());
                    let mut s = stream;
                    writeln!(s, "{}", format_args!("{{\"cmd\":\"watch\",\"id\":{id}}}"))
                        .expect("send");
                    let mut line = String::new();
                    rd.read_line(&mut line).expect("ack");
                    line.clear();
                    let _ = rd.read_line(&mut line);
                    // dropping the socket here = mid-stream disconnect
                } else {
                    let mut w = Client::connect(&addr).expect("connect");
                    let _ = w.watch(id, |_| {});
                }
            }));
        }
        let result = wait_done(&addr, id);
        for j in joins {
            j.join().expect("watcher thread");
        }
        handle.shutdown();
        join.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        result
    };

    let alone = run(0);
    let watched = run(3);
    assert_eq!(alone.identity_key(), watched.identity_key());
    assert_eq!(alone.trajectory_digest, watched.trajectory_digest);
}
