//! Extension E1 (the paper's footnote-2 future work): fission along
//! sliding-window spatial axes with halo-overlap accounting. U-Net's
//! stride-1 double-convolutions over large feature maps are the target
//! case: splitting H shrinks every interior feature map while the
//! halo's extra reads appear as `PartSlice` traffic.

use magis::core::dgraph::{component_dims, DimGraph};
use magis::core::fission::{apply_overlay, FissionSpec};
use magis::prelude::*;
use magis_graph::algo::topo_order;
use magis_graph::{GraphTxn, GraphView};
use std::collections::BTreeSet;

/// A stride-1 conv chain (one U-Net double-conv block plus one more).
fn conv_chain() -> (Graph, Vec<NodeId>) {
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([4, 16, 64, 64], "x");
    let mut convs = Vec::new();
    let mut cur = x;
    for i in 0..3 {
        let w = b.weight([16, 16, 3, 3], &format!("w{i}"));
        cur = b.conv2d(cur, w, magis::graph::op::Conv2dAttrs::same(1));
        convs.push(cur);
        cur = b.relu(cur);
        convs.push(cur);
    }
    (b.finish(), convs)
}

fn h_spec(g: &Graph, nodes: &[NodeId], parts: u64) -> FissionSpec {
    let dg = DimGraph::build(g);
    let set: BTreeSet<NodeId> = nodes.iter().copied().collect();
    let comp = dg
        .components()
        .into_iter()
        .find(|c| c.contains(&(nodes[0], 3)))
        .expect("H component exists");
    let dims = component_dims(&comp, &set).expect("unique H dims");
    FissionSpec { set, dims, parts }
}

#[test]
fn h_axis_component_spans_conv_chain() {
    let (g, convs) = conv_chain();
    let dg = DimGraph::build(&g);
    let comp = dg
        .components()
        .into_iter()
        .find(|c| c.contains(&(convs[0], 3)))
        .expect("H component");
    // Every conv/relu H dim participates.
    for &c in &convs {
        assert!(comp.contains(&(c, 3)), "node {c} H in component");
    }
}

#[test]
fn h_split_validates_and_has_halo() {
    let (g, convs) = conv_chain();
    let spec = h_spec(&g, &convs, 4);
    spec.validate(&g).unwrap();
    // Three 3x3 convs: accumulated halo = 3 * (3 - 1) = 6.
    assert_eq!(spec.region_halo(&g), 6);
}

#[test]
fn h_split_overlay_annotates_halo_and_scales_interiors() {
    let (g, convs) = conv_chain();
    let cm = CostModel::default();
    let base = evaluate(&g, &topo_order(&g), &cm);
    let spec = h_spec(&g, &convs, 4);
    let mut txn = GraphTxn::begin(&g);
    let info = apply_overlay(&mut txn, &spec).unwrap();
    let ov = txn.commit().0;
    ov.validate().unwrap();
    // The input part-slice carries the halo annotation.
    let ps = info.slices[0];
    assert!(matches!(ov.node(ps).op, OpKind::PartSlice { halo: 6, .. }));
    let ev = evaluate(&ov, &topo_order(&ov), &cm);
    assert!(ev.latency > base.latency, "halo + utilization cost latency");
    // Interior shapes scaled along H only (dim 2 is H in NCHW).
    for &c in &convs {
        assert_eq!(ov.node(c).meta.shape.dim(2), 16, "H 64/4");
        assert_eq!(ov.node(c).meta.shape.dim(3), 64, "W untouched");
    }
}

/// On a plain chain, fission pins the region's input and output while
/// interiors were dying immediately anyway — it should NOT pay off. On
/// a chain whose activations stay live (a backward pass reads them),
/// it must. Splitting H captures exactly U-Net's high-resolution
/// regime.
#[test]
fn h_split_pays_off_with_long_lifetimes_only() {
    let cm = CostModel::default();
    // Plain chain: fission is counterproductive (honest negative).
    let (g, convs) = conv_chain();
    let base = evaluate(&g, &topo_order(&g), &cm);
    let mut txn = GraphTxn::begin(&g);
    apply_overlay(&mut txn, &h_spec(&g, &convs, 4)).unwrap();
    let ov = txn.commit().0;
    let ev = evaluate(&ov, &topo_order(&ov), &cm);
    assert!(
        ev.peak_bytes >= base.peak_bytes,
        "chain fission pins I/O without freeing anything"
    );

    // Chain with long skips: every activation is re-read at the end
    // (the U-Net/backward lifetime shape) — H fission shrinks the live
    // set.
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([4, 16, 64, 64], "x");
    let mut cur = x;
    let mut acts = Vec::new();
    for i in 0..4 {
        let w = b.weight([16, 16, 3, 3], &format!("w{i}"));
        cur = b.conv2d(cur, w, magis::graph::op::Conv2dAttrs::same(1));
        acts.push(cur);
        cur = b.relu(cur);
        acts.push(cur);
    }
    // Late re-reads, LIFO.
    let snapshot: Vec<NodeId> = acts.iter().rev().copied().collect();
    for a in snapshot {
        cur = b.add_op(cur, a);
        acts.push(cur);
    }
    let g = b.finish();
    let base = evaluate(&g, &topo_order(&g), &cm);
    let spec = h_spec(&g, &acts, 4);
    spec.validate(&g).unwrap();
    let mut txn = GraphTxn::begin(&g);
    apply_overlay(&mut txn, &spec).unwrap();
    let ov = txn.commit().0;
    ov.validate().unwrap();
    let ev = evaluate(&ov, &topo_order(&ov), &cm);
    assert!(
        ev.peak_bytes < base.peak_bytes,
        "H fission shrinks long-lived feature maps: {} < {}",
        ev.peak_bytes,
        base.peak_bytes
    );
}

#[test]
fn strided_conv_blocks_h_component() {
    // A stride-2 conv in the middle must break the H chain: its H dim
    // is unlinked, so no valid spec spans it.
    let mut b = GraphBuilder::new(DType::F32);
    let x = b.input([2, 8, 32, 32], "x");
    let w1 = b.weight([8, 8, 3, 3], "w1");
    let c1 = b.conv2d(x, w1, magis::graph::op::Conv2dAttrs::same(1));
    let w2 = b.weight([8, 8, 3, 3], "w2");
    let c2 = b.conv2d(c1, w2, magis::graph::op::Conv2dAttrs::strided(2, 1));
    let g = b.finish();
    let dg = DimGraph::build(&g);
    let comp = dg.components().into_iter().find(|c| c.contains(&(c1, 3)));
    if let Some(comp) = comp {
        assert!(!comp.contains(&(c2, 3)), "strided conv H not in the chain");
    }
}

#[test]
fn unet_ftree_contains_spatial_candidates() {
    // With E1, the U-Net F-Tree should offer H/W splits in addition to
    // batch splits.
    let tg = Workload::UNet.build(0.3);
    let ctx = EvalContext::default();
    let mut s = MState::initial(tg.graph.clone(), &ctx);
    s.analyze(4);
    assert!(!s.ftree.is_empty());
    let spatial = s.ftree.nodes().iter().any(|n| {
        n.spec
            .dims
            .iter()
            .any(|(&v, &d)| d > 2 && tg.graph.node(v).meta.shape.rank() == 4)
    });
    let batch = s.ftree.nodes().iter().any(|n| n.spec.dims.values().any(|&d| d == 1));
    assert!(
        spatial || batch,
        "F-Tree offers spatial or batch candidates; got {} candidates",
        s.ftree.len()
    );
}
