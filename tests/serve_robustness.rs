//! Robustness suite for the `magis-serve` supervision layer:
//! deadlines return best-so-far, full queues shed load without
//! perturbing running jobs, identical jobs are bit-identical, drains
//! journal interrupted work, and a `kill -9`'d daemon resumes
//! mid-flight jobs bit-exactly after restart.

use magis::core::budget::CancelToken;
use magis::obs::json::Json;
use magis::serve::job::run_job;
use magis::serve::{journal, Client, JobResult, JobSpec, ServeConfig, ServeError, Server};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("magis_serve_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A small UNet job with a deterministic stop (candidate cap).
fn unet_spec(max_candidates: usize) -> JobSpec {
    JobSpec {
        workload: Some("unet".into()),
        scale: 0.15,
        max_candidates: Some(max_candidates),
        budget_ms: 3_600_000, // the soft budget must never fire here
        threads: 1,
        checkpoint_every: 2,
        ..JobSpec::default()
    }
}

/// Boots an in-process server on a free port and runs it on a thread.
fn start(
    mut cfg: ServeConfig,
) -> (magis::serve::ServerHandle, thread::JoinHandle<std::io::Result<()>>) {
    cfg.addr = "127.0.0.1:0".into();
    let server = Server::bind(cfg).expect("bind");
    let handle = server.handle().expect("handle");
    let join = thread::spawn(move || server.run());
    (handle, join)
}

/// Polls `status` until the job settles (done/failed/interrupted).
fn wait_settled(addr: SocketAddr, id: u64, timeout: Duration) -> Json {
    let t0 = Instant::now();
    loop {
        let mut c = Client::connect(addr).expect("connect");
        let st = c.status(id).expect("status");
        let state = st.get("state").and_then(Json::as_str).unwrap_or("");
        if matches!(state, "done" | "failed" | "interrupted") {
            return st;
        }
        assert!(t0.elapsed() < timeout, "job {id} did not settle within {timeout:?}");
        thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn deadline_job_returns_valid_best_so_far() {
    let state = scratch("deadline");
    let (handle, join) =
        start(ServeConfig { state_dir: state.clone(), workers: 1, ..ServeConfig::default() });
    let mut spec = unet_spec(0);
    spec.max_candidates = None; // only the deadline stops this job
    spec.wall_limit_ms = Some(200);

    let mut c = Client::connect(handle.addr()).expect("connect");
    let out = c.submit_and_wait(&spec).expect("submit");
    let r = out.result.expect("deadline is a successful anytime stop, not a failure");
    assert_eq!(r.stop_reason, "deadline");
    assert!(!r.deterministic, "a deadline stop must not enter the result cache");
    assert!(r.peak_bytes > 0, "best-so-far incumbent is a real state");
    assert!(r.latency > 0.0);
    assert!(r.evaluated >= 1, "the search made progress before the deadline");
    assert!(!r.pareto.is_empty(), "pareto front accompanies the incumbent");

    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn full_queue_rejects_without_perturbing_running_jobs() {
    let state = scratch("queuefull");
    let (handle, join) = start(ServeConfig {
        state_dir: state.clone(),
        workers: 1,
        queue_capacity: 1,
        client_cap: 64,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // One running + one queued fills the single-worker server.
    let mut c = Client::connect(addr).expect("connect");
    let running_id = c.submit_nowait(&unet_spec(60)).expect("first accepted");
    // Give the worker a beat to pull the first job off the queue.
    let t0 = Instant::now();
    loop {
        let p = c.ping().expect("ping");
        if p.get("running").and_then(Json::as_u64) == Some(1) {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(30), "first job never started");
        thread::sleep(Duration::from_millis(10));
    }
    let queued_id = c.submit_nowait(&unet_spec(61)).expect("second accepted (queued)");

    // The next submission must bounce with a 429-style rejection.
    let mut c2 = Client::connect(addr).expect("connect");
    match c2.submit_nowait(&unet_spec(62)) {
        Err(ServeError::Rejected { code, error }) => {
            assert_eq!(code, 429, "backpressure uses a 429-style code");
            assert!(error.contains("queue"), "reason names the queue: {error}");
        }
        other => panic!("expected a queue-full rejection, got {other:?}"),
    }

    // The rejection must not have perturbed the admitted jobs.
    for id in [running_id, queued_id] {
        let st = wait_settled(addr, id, Duration::from_secs(120));
        let state_str = st.get("state").and_then(Json::as_str).unwrap();
        assert_eq!(state_str, "done", "admitted job {id} completes normally");
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn per_client_cap_rejects_excess_concurrency() {
    let state = scratch("clientcap");
    let (handle, join) = start(ServeConfig {
        state_dir: state.clone(),
        workers: 1,
        queue_capacity: 16,
        client_cap: 1,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr()).expect("connect");
    let mut spec = unet_spec(40);
    spec.client = "greedy".into();
    let first = c.submit_nowait(&spec).expect("first accepted");
    let mut second_spec = unet_spec(41);
    second_spec.client = "greedy".into();
    match c.submit_nowait(&second_spec) {
        Err(ServeError::Rejected { code, error }) => {
            assert_eq!(code, 429);
            assert!(error.contains("client"), "reason names the client cap: {error}");
        }
        other => panic!("expected a client-cap rejection, got {other:?}"),
    }
    // A different client identity is unaffected.
    let mut other_spec = unet_spec(41);
    other_spec.client = "patient".into();
    let second = c.submit_nowait(&other_spec).expect("other client accepted");
    for id in [first, second] {
        wait_settled(handle.addr(), id, Duration::from_secs(120));
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn same_job_twice_concurrently_is_bit_identical() {
    let state = scratch("samejob");
    let (handle, join) = start(ServeConfig {
        state_dir: state.clone(),
        workers: 2,
        result_cache: 0, // force both submissions to run a fresh search
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let spec = unet_spec(30);

    let submit = |spec: JobSpec| {
        thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            c.submit_and_wait(&spec).expect("submit").result.expect("job succeeds")
        })
    };
    let a = submit(spec.clone());
    let b = submit(spec);
    let (ra, rb) = (a.join().unwrap(), b.join().unwrap());

    assert_eq!(ra.identity_key(), rb.identity_key(), "same job → bit-identical result");
    assert_eq!(
        ra.trajectory_digest, rb.trajectory_digest,
        "the full search trajectories match, not just the endpoints"
    );
    assert!(ra.deterministic, "candidate-cap stop is deterministic");

    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn deterministic_results_are_served_from_the_result_cache() {
    let state = scratch("cachehit");
    let (handle, join) =
        start(ServeConfig { state_dir: state.clone(), workers: 1, ..ServeConfig::default() });
    let mut c = Client::connect(handle.addr()).expect("connect");
    let first = c.submit_and_wait(&unet_spec(20)).expect("first");
    assert!(!first.cached);
    let second = c.submit_and_wait(&unet_spec(20)).expect("second");
    assert!(second.cached, "repeat deterministic submission hits the cache");
    let (ra, rb) = (first.result.unwrap(), second.result.unwrap());
    assert_eq!(ra.identity_key(), rb.identity_key());
    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn drain_journals_interrupted_jobs_and_restart_completes_them() {
    let state = scratch("drain");
    // Tiny drain timeout: shutdown cancels the running search almost
    // immediately; the cancelled search checkpoints its frontier.
    let (handle, join) = start(ServeConfig {
        state_dir: state.clone(),
        workers: 1,
        drain_timeout_ms: 50,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let mut c = Client::connect(addr).expect("connect");
    let id = c.submit_nowait(&unet_spec(400)).expect("accepted");
    // Let the job actually start before pulling the plug.
    thread::sleep(Duration::from_millis(300));
    handle.shutdown();
    join.join().unwrap().unwrap();

    // The journal must hold the spec, unsettled.
    let (replayed, _) = journal::replay(&state);
    let entry = replayed.iter().find(|j| j.id == id).expect("journal entry survives");
    assert!(entry.settled.is_none(), "interrupted job is journaled as in-flight");

    // A restarted server replays and completes it.
    let (handle2, join2) =
        start(ServeConfig { state_dir: state.clone(), workers: 1, ..ServeConfig::default() });
    let st = wait_settled(handle2.addr(), id, Duration::from_secs(300));
    assert_eq!(st.get("state").and_then(Json::as_str), Some("done"));
    let result = st.get("result").expect("done status carries the result");
    assert_eq!(
        result.get("deterministic"),
        Some(&Json::Bool(true)),
        "the replayed job ran to its deterministic stop"
    );
    handle2.shutdown();
    join2.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&state);
}

/// The headline crash-safety contract: `kill -9` the daemon mid-job,
/// restart it on the same state directory, and the journal replay
/// resumes the search from its last checkpoint to a result
/// bit-identical to an uninterrupted run.
#[test]
fn kill_dash_nine_restart_resumes_bit_identical() {
    let state = scratch("kill9");
    std::fs::create_dir_all(&state).unwrap();
    let port_file = state.join("port");
    let spawn_daemon = || {
        std::process::Command::new(env!("CARGO_BIN_EXE_magis-served"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--state-dir",
                state.to_str().unwrap(),
                "--workers",
                "1",
                "--port-file",
                port_file.to_str().unwrap(),
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("daemon spawns")
    };
    let read_addr = || -> SocketAddr {
        let t0 = Instant::now();
        loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(addr) = text.trim().parse() {
                    return addr;
                }
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "daemon never wrote its port");
            thread::sleep(Duration::from_millis(25));
        }
    };

    // A job long enough to survive until the kill lands: checkpoint
    // after every expansion, several hundred candidates of work.
    let mut spec = unet_spec(400);
    spec.checkpoint_every = 1;

    let mut daemon = spawn_daemon();
    let addr = read_addr();
    let mut c = Client::connect(addr).expect("connect");
    let id = c.submit_nowait(&spec).expect("accepted");
    drop(c);

    // Wait for the first frontier checkpoint, then kill -9.
    let ckpt = journal::job_dir(&state, id).join(journal::CKPT_FILE);
    let t0 = Instant::now();
    while !ckpt.exists() {
        assert!(t0.elapsed() < Duration::from_secs(120), "no checkpoint appeared");
        thread::sleep(Duration::from_millis(10));
    }
    daemon.kill().expect("kill -9");
    daemon.wait().expect("reaped");
    assert!(
        !journal::job_dir(&state, id).join(journal::RESULT_FILE).exists(),
        "the job must not have finished before the kill — raise the candidate cap if it did"
    );

    // Restart on the same state dir: the journal replays the job.
    let _ = std::fs::remove_file(&port_file);
    let mut daemon2 = spawn_daemon();
    let addr2 = read_addr();
    let st = wait_settled(addr2, id, Duration::from_secs(600));
    assert_eq!(st.get("state").and_then(Json::as_str), Some("done"));
    let resumed = JobResult::from_json(st.get("result").expect("result")).expect("parses");
    assert!(resumed.resumed, "the restarted daemon resumed from the checkpoint");

    // Reference: the same spec run uninterrupted, in-process.
    let ref_dir = scratch("kill9_ref");
    std::fs::create_dir_all(&ref_dir).unwrap();
    let reference =
        run_job(&spec, &ref_dir, CancelToken::new(), None).expect("uninterrupted reference run");
    assert!(!reference.resumed);
    assert_eq!(
        resumed.identity_key(),
        reference.identity_key(),
        "crash + journal replay is bit-identical to never crashing"
    );

    // Shut the second daemon down gracefully (the SIGTERM drain path).
    unsafe {
        kill(daemon2.id() as i32, 15);
    }
    let t0 = Instant::now();
    loop {
        match daemon2.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "drained daemon exits cleanly: {status:?}");
                break;
            }
            None if t0.elapsed() > Duration::from_secs(60) => {
                daemon2.kill().unwrap();
                panic!("daemon did not drain after SIGTERM");
            }
            None => thread::sleep(Duration::from_millis(50)),
        }
    }
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}
