//! The incremental-evaluation contract, enforced end-to-end on the
//! bench workloads.
//!
//! Candidates derived by one rewrite are evaluated by delta
//! scheduling + delta memory profiling (plus the structural-hash
//! evaluation cache), and the contract is *bit-identity*: the metrics
//! an incremental evaluation reports must equal a from-scratch
//! re-evaluation of the same state — same peak bytes (`u64` equality),
//! same latency (`f64` bit pattern), valid schedule. Under
//! [`ParanoiaLevel::All`] the optimizer cross-checks every evaluated
//! candidate against a full re-evaluation and rejects any mismatch, so
//! `invariant_rejections == 0` over a whole search *is* the proof that
//! incremental evaluation never diverged.
//!
//! The second contract is determinism: with the evaluation cache on
//! (its default), `threads = 1` and `threads = N` must still walk the
//! same trajectory, because the cache is frozen during the parallel
//! fan-out and only mutated at the ordered single-threaded merge.

use magis::core::optimizer::ParanoiaLevel;
use magis::core::state::EvalMode;
use magis::prelude::*;
use std::time::Duration;

/// A capped, never-timing-out configuration (same shape as the
/// parallel-search harness: timing must never influence the
/// trajectory).
fn capped(objective: Objective, threads: usize) -> OptimizerConfig {
    OptimizerConfig::new(objective)
        .with_budget(Duration::from_secs(3600))
        .with_max_evals(60)
        .with_threads(threads)
}

/// Runs a paranoid (cross-checked) incremental search and asserts the
/// bit-identity contract held on every candidate.
fn assert_bit_identical(w: Workload, scale: f64) {
    let tg = w.build(scale);
    let init = MState::initial(tg.graph.clone(), &EvalContext::default());
    let mut cfg = capped(
        Objective::MinMemory { lat_limit: init.eval.latency * 1.25 },
        2,
    )
    .with_paranoia(ParanoiaLevel::All);
    assert_eq!(cfg.ctx.mode, EvalMode::Incremental, "incremental is the default");
    cfg.ctx.mode = EvalMode::Incremental;
    let res = optimize(tg.graph.clone(), &cfg);
    assert!(res.stats.evaluated > 0, "{w:?}: search evaluated candidates");
    assert_eq!(
        res.stats.invariant_rejections, 0,
        "{w:?}: every incremental evaluation matched its full re-evaluation bit-for-bit"
    );
    // The incumbent must actually be an improvement-or-equal state with
    // sane metrics — paranoia only filters, it must not corrupt.
    assert!(res.best.eval.peak_bytes > 0);
    assert!(res.best.eval.peak_bytes <= init.eval.peak_bytes);
    assert!(res.best.eval.latency.is_finite());
}

#[test]
fn incremental_bit_identical_on_unet() {
    assert_bit_identical(Workload::UNet, 0.2);
}

#[test]
fn incremental_bit_identical_on_bert() {
    assert_bit_identical(Workload::BertBase, 0.12);
}

#[test]
fn incremental_bit_identical_on_resnet() {
    assert_bit_identical(Workload::ResNet50, 0.1);
}

#[test]
fn incremental_bit_identical_on_vit() {
    assert_bit_identical(Workload::VitBase, 0.1);
}

/// Everything a trajectory determines, for cross-thread comparison.
struct Run {
    best: (u64, f64),
    history: Vec<(u64, f64)>,
    evaluated: usize,
    cache_hits: usize,
    cache_misses: usize,
}

fn run(tg: &Graph, threads: usize) -> Run {
    let init = MState::initial(tg.clone(), &EvalContext::default());
    let cfg = capped(
        Objective::MinMemory { lat_limit: init.eval.latency * 1.25 },
        threads,
    );
    let res = optimize(tg.clone(), &cfg);
    Run {
        best: res.best.cost(),
        history: res.history.iter().map(|p| (p.peak_bytes, p.latency)).collect(),
        evaluated: res.stats.evaluated,
        cache_hits: res.stats.eval_cache_hits,
        cache_misses: res.stats.eval_cache_misses,
    }
}

#[test]
fn eval_cache_is_deterministic_across_threads() {
    // The evaluation cache stays on (default capacity): hit/miss
    // decisions are part of the trajectory, so they must not depend on
    // worker interleaving.
    let tg = Workload::UNet.build(0.2);
    let serial = run(&tg.graph, 1);
    for threads in [2, 4] {
        let parallel = run(&tg.graph, threads);
        assert_eq!(serial.best.0, parallel.best.0, "peak bytes identical at {threads} threads");
        assert_eq!(
            serial.best.1.to_bits(),
            parallel.best.1.to_bits(),
            "latency bit-identical at {threads} threads"
        );
        assert_eq!(serial.history.len(), parallel.history.len());
        for (s, p) in serial.history.iter().zip(&parallel.history) {
            assert_eq!(s.0, p.0);
            assert_eq!(s.1.to_bits(), p.1.to_bits());
        }
        assert_eq!(serial.evaluated, parallel.evaluated);
        assert_eq!(serial.cache_hits, parallel.cache_hits, "cache hits identical");
        assert_eq!(serial.cache_misses, parallel.cache_misses, "cache misses identical");
    }
}

#[test]
fn full_mode_also_passes_paranoia() {
    // `--eval full` is the escape hatch; the cross-check must be a
    // no-op tautology there (full vs full), never a false rejection.
    let tg = Workload::UNet.build(0.15);
    let init = MState::initial(tg.graph.clone(), &EvalContext::default());
    let mut cfg = capped(
        Objective::MinMemory { lat_limit: init.eval.latency * 1.25 },
        2,
    )
    .with_paranoia(ParanoiaLevel::All)
    .with_eval_cache(0);
    cfg.ctx.mode = EvalMode::Full;
    let res = optimize(tg.graph.clone(), &cfg);
    assert!(res.stats.evaluated > 0);
    assert_eq!(res.stats.invariant_rejections, 0);
    assert_eq!(res.stats.eval_cache_hits, 0, "cache disabled");
}
