//! Property-based tests of the fission machinery: for random MLP-like
//! training graphs and random valid fission specs, the representative-
//! part overlay must agree with full materialization on semantics-level
//! invariants (validity, shape restoration) and approximate it on
//! cost/memory.

use magis::core::dgraph::{component_dims, DimGraph};
use magis::core::fission::{apply_full, apply_overlay, FissionSpec};
use magis::prelude::*;
use magis_graph::algo::{topo_order, weakly_connected_components};
use magis_graph::{GraphTxn, GraphView};
use magis_util::prop::prelude::*;
use std::collections::BTreeSet;

/// Builds a small training MLP with proptest-chosen dimensions.
fn build_mlp(batch: u64, hidden: u64, depth: usize) -> Graph {
    let mut b = GraphBuilder::new(DType::F32);
    let mut cur = b.input([batch, hidden], "x");
    for i in 0..depth {
        let w = b.weight([hidden, hidden], &format!("w{i}"));
        let h = b.matmul(cur, w);
        cur = b.gelu(h);
    }
    let wl = b.weight([hidden, 8], "wl");
    let logits = b.matmul(cur, wl);
    let y = b.label([batch], "y");
    let loss = b.cross_entropy(logits, y);
    append_backward(b.finish(), loss, &TrainOptions::default())
        .expect("backward")
        .graph
}

/// Enumerates valid fission specs of `g`: contiguous topo-order runs of
/// each D-Graph component with a unique per-node dim choice.
fn valid_specs(g: &Graph, parts: u64) -> Vec<FissionSpec> {
    let dg = DimGraph::build(g);
    let order = topo_order(g);
    let mut specs = Vec::new();
    for comp in dg.components() {
        let nodes: BTreeSet<NodeId> = comp.iter().map(|&(v, _)| v).collect();
        let comp_order: Vec<NodeId> =
            order.iter().copied().filter(|v| nodes.contains(v)).collect();
        for len in [2usize, 4, 7] {
            for start in (0..comp_order.len().saturating_sub(len)).step_by(3) {
                let set: BTreeSet<NodeId> =
                    comp_order[start..start + len].iter().copied().collect();
                // Skip sets split by the component restriction.
                if weakly_connected_components(g, &set).len() != 1 {
                    continue;
                }
                let Some(dims) = component_dims(&comp, &set) else { continue };
                let spec = FissionSpec { set, dims, parts };
                if spec.validate(g).is_ok() {
                    specs.push(spec);
                }
            }
        }
    }
    specs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn overlay_and_full_agree(
        batch_exp in 5u32..8,
        hidden_exp in 5u32..7,
        depth in 2usize..4,
        parts in prop::sample::select(vec![2u64, 4]),
    ) {
        let g = build_mlp(1 << batch_exp, 1 << hidden_exp, depth);
        let cm = CostModel::default();
        let specs = valid_specs(&g, parts);
        prop_assert!(!specs.is_empty(), "training MLPs always have fissionable regions");
        for spec in specs.iter().take(4) {
            // Overlay path.
            let mut txn = GraphTxn::begin(&g);
            apply_overlay(&mut txn, spec).expect("validated spec overlays");
            let ov = txn.commit().0;
            ov.validate().expect("overlay graph well-formed");
            // Full materialization path.
            let full = apply_full(&g, spec).expect("validated spec materializes");
            full.validate().expect("full graph well-formed");
            // Node-count relationship: overlay is O(|S|); full is O(n·|S|).
            prop_assert!(full.len() > ov.len());
            // Latency agreement within 35%.
            let ev_o = evaluate(&ov, &topo_order(&ov), &cm);
            let ev_f = evaluate(&full, &topo_order(&full), &cm);
            let ratio = ev_o.latency / ev_f.latency;
            prop_assert!((0.65..1.55).contains(&ratio), "latency ratio {ratio}");
            // Both transforms keep every original graph output shape:
            // outputs of the region are merged back to full size.
            for &out in &spec.outputs(&g) {
                let orig = g.node(out).meta.clone();
                let restored = ov
                    .node_ids()
                    .any(|v| ov.node(v).meta == orig && !ov.node(v).op.is_input());
                prop_assert!(restored, "overlay restores {orig} somewhere");
            }
        }
    }

    #[test]
    fn overlay_fission_never_increases_region_tensor_sizes(
        batch_exp in 5u32..8,
        parts in prop::sample::select(vec![2u64, 4, 8]),
    ) {
        let g = build_mlp(1 << batch_exp, 64, 3);
        let specs = valid_specs(&g, parts);
        for spec in specs.iter().take(4) {
            let mut txn = GraphTxn::begin(&g);
            apply_overlay(&mut txn, spec).expect("overlay");
            let ov = txn.commit().0;
            for (&v, &d) in &spec.dims {
                let before = g.node(v).meta.size_bytes();
                let after = ov.node(v).meta.size_bytes();
                if d > 0 {
                    prop_assert!(after < before, "split node shrinks: {after} < {before}");
                } else {
                    prop_assert_eq!(after, before, "reduce-dim node keeps full shape");
                }
                prop_assert_eq!(ov.node(v).cost_repeat, parts);
            }
        }
    }
}

#[test]
fn nested_specs_compose_on_training_graph() {
    let g = build_mlp(128, 64, 3);
    let specs = valid_specs(&g, 2);
    // Find a nested pair: one spec strictly inside another.
    let pair = specs.iter().enumerate().find_map(|(i, a)| {
        specs
            .iter()
            .enumerate()
            .find(|(j, b)| i != *j && b.set.is_subset(&a.set) && b.set.len() < a.set.len())
            .map(|(_, b)| (a.clone(), b.clone()))
    });
    if let Some((outer, inner)) = pair {
        let mut txn = GraphTxn::begin(&g);
        apply_overlay(&mut txn, &outer).expect("outer overlay");
        if apply_overlay(&mut txn, &inner).is_ok() {
            let gg = txn.commit().0;
            gg.validate().expect("nested overlay well-formed");
            for &v in &inner.set {
                assert_eq!(gg.node(v).cost_repeat, 4, "2 x 2 nested parts");
            }
        }
    }
}
