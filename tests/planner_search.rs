//! Search-level contract of the `planned` memory objective: paranoid
//! bit-identity on the bench models and thread-count determinism.
//!
//! Under `--objective planned` every evaluated candidate carries a
//! [`magis::sim::MemoryPlan`] and the search steers on its
//! `planned_peak_bytes` instead of the liveness sum. The two contracts
//! mirror `incremental_eval.rs` and `parallel_search.rs`:
//!
//! * **paranoia** — with [`ParanoiaLevel::All`] every incremental
//!   evaluation (delta schedule + delta profile + delta plan) is
//!   cross-checked against a full re-evaluation, and
//!   `invariant_rejections == 0` over a whole search proves the delta
//!   planner never diverged on any candidate the search visited;
//! * **determinism** — the planned peak, fragmentation ratio, and the
//!   whole accepted-candidate history are bit-identical for
//!   `threads = 1` and `threads = 4`.

use magis::core::optimizer::ParanoiaLevel;
use magis::prelude::*;
use magis::sim::MemObjective;
use std::time::Duration;

/// A capped, never-timing-out planned-objective configuration (same
/// shape as the parallel-search harness: timing must never influence
/// the trajectory).
fn capped_planned(objective: Objective, threads: usize) -> OptimizerConfig {
    let mut cfg = OptimizerConfig::new(objective)
        .with_budget(Duration::from_secs(3600))
        .with_max_evals(60)
        .with_threads(threads);
    cfg.ctx.mem_objective = MemObjective::Planned;
    cfg
}

/// Runs a paranoid planned-objective search and asserts every
/// delta-planned candidate matched its full re-evaluation.
fn assert_planned_paranoid(w: Workload, scale: f64) {
    let tg = w.build(scale);
    let init = MState::initial(tg.graph.clone(), &EvalContext::default());
    let cfg = capped_planned(
        Objective::MinMemory { lat_limit: init.eval.latency * 1.25 },
        2,
    )
    .with_paranoia(ParanoiaLevel::All);
    let res = optimize(tg.graph.clone(), &cfg);
    assert!(res.stats.evaluated > 0, "{w:?}: search evaluated candidates");
    assert_eq!(
        res.stats.invariant_rejections, 0,
        "{w:?}: every delta plan matched its from-scratch re-plan bit-for-bit"
    );
    let plan = res.best.eval.plan.as_ref().unwrap_or_else(|| {
        panic!("{w:?}: planned objective carries a memory plan on the incumbent")
    });
    assert!(plan.planned_peak_bytes > 0, "{w:?}: planned peak is finite and positive");
    assert!(
        plan.planned_peak_bytes >= plan.liveness_peak_bytes,
        "{w:?}: planned peak dominates liveness peak"
    );
    assert_eq!(
        plan.liveness_peak_bytes, res.best.eval.peak_bytes,
        "{w:?}: the plan's liveness peak is the evaluation's liveness peak"
    );
    assert_eq!(
        res.best.eval.objective_peak(),
        plan.planned_peak_bytes,
        "{w:?}: the search steers on the planned peak"
    );
    assert!(plan.fragmentation_ratio().is_finite(), "{w:?}: fragmentation ratio finite");
}

#[test]
fn planned_paranoid_on_unet() {
    assert_planned_paranoid(Workload::UNet, 0.15);
}

#[test]
fn planned_paranoid_on_bert() {
    assert_planned_paranoid(Workload::BertBase, 0.1);
}

#[test]
fn planned_paranoid_on_resnet() {
    assert_planned_paranoid(Workload::ResNet50, 0.1);
}

#[test]
fn planned_paranoid_on_vit() {
    assert_planned_paranoid(Workload::VitBase, 0.1);
}

/// Everything a planned-objective trajectory determines.
struct Run {
    best_planned: u64,
    best_liveness: u64,
    best_latency_bits: u64,
    fragmentation_bits: u64,
    history: Vec<(u64, u64)>,
    evaluated: usize,
    expanded: usize,
    cache_hits: usize,
    cache_misses: usize,
}

fn run(tg: &Graph, threads: usize) -> Run {
    let init = MState::initial(tg.clone(), &EvalContext::default());
    let cfg = capped_planned(
        Objective::MinMemory { lat_limit: init.eval.latency * 1.25 },
        threads,
    );
    let res = optimize(tg.clone(), &cfg);
    assert_eq!(res.stats.threads, threads);
    let plan = res.best.eval.plan.as_ref().expect("planned objective carries a plan");
    Run {
        best_planned: plan.planned_peak_bytes,
        best_liveness: res.best.eval.peak_bytes,
        best_latency_bits: res.best.eval.latency.to_bits(),
        fragmentation_bits: plan.fragmentation_ratio().to_bits(),
        history: res.history.iter().map(|p| (p.peak_bytes, p.latency.to_bits())).collect(),
        evaluated: res.stats.evaluated,
        expanded: res.stats.expanded,
        cache_hits: res.stats.eval_cache_hits,
        cache_misses: res.stats.eval_cache_misses,
    }
}

#[test]
fn planned_objective_is_deterministic_across_thread_counts() {
    let tg = Workload::UNet.build(0.15);
    let serial = run(&tg.graph, 1);
    let parallel = run(&tg.graph, 4);
    assert_eq!(serial.best_planned, parallel.best_planned, "planned peak identical");
    assert_eq!(serial.best_liveness, parallel.best_liveness, "liveness peak identical");
    assert_eq!(serial.best_latency_bits, parallel.best_latency_bits, "latency bit-identical");
    assert_eq!(
        serial.fragmentation_bits, parallel.fragmentation_bits,
        "fragmentation ratio bit-identical"
    );
    assert_eq!(
        serial.history, parallel.history,
        "accepted-candidate sequence identical (objective peaks + latency bits)"
    );
    assert_eq!(serial.evaluated, parallel.evaluated, "evaluated");
    assert_eq!(serial.expanded, parallel.expanded, "expanded");
    assert_eq!(serial.cache_hits, parallel.cache_hits, "cache hits");
    assert_eq!(serial.cache_misses, parallel.cache_misses, "cache misses");
    assert!(serial.evaluated > 0, "the capped search did real work");
}

#[test]
fn planned_and_liveness_objectives_are_independently_cached() {
    // Running the two objectives back-to-back over the same graph must
    // not let one mode's cached evaluations leak into the other: a
    // planned-mode incumbent always carries a plan, a liveness-mode
    // incumbent never does.
    let tg = Workload::UNet.build(0.15);
    let init = MState::initial(tg.graph.clone(), &EvalContext::default());
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.25 };
    let planned = optimize(tg.graph.clone(), &capped_planned(obj, 2));
    let liveness = optimize(
        tg.graph.clone(),
        &OptimizerConfig::new(obj)
            .with_budget(Duration::from_secs(3600))
            .with_max_evals(60)
            .with_threads(2),
    );
    assert!(planned.best.eval.plan.is_some(), "planned search carries a plan");
    assert!(liveness.best.eval.plan.is_none(), "liveness search carries no plan");
    assert!(
        planned.best.eval.plan.as_ref().unwrap().planned_peak_bytes
            >= planned.best.eval.peak_bytes,
        "planned incumbent dominates its own liveness peak"
    );
}
