//! Differential property suite for the copy-on-write graph
//! representation.
//!
//! A CoW clone (`Graph::clone`, an `Arc` bump per page vector) must be
//! observationally identical to a deep copy (a `to_record` /
//! `from_record` round-trip, which rebuilds every page from scratch
//! and shares nothing): same WL hash, same canonical record, same full
//! evaluation. Rewrites applied to one clone must never leak into a
//! sibling, and a randomized transform sequence replayed on deep
//! copies must track the CoW-evolved lineage bit for bit. Finally, the
//! structural clone-cost guard: cloning is O(1) in pages and a k-node
//! rewrite unshares O(k) pages, independent of how many untouched
//! nodes the graph holds.

use magis::core::rules::{self, RuleConfig};
use magis::graph::algo::graph_hash;
use magis::graph::builder::GraphBuilder;
use magis::graph::io::{from_record, to_record};
use magis::prelude::*;
use magis_util::rng::{Rng, SeedableRng, SmallRng};

/// Deep copy through the canonical record format: fresh pages, no
/// sharing with the source.
fn deep_copy(g: &Graph) -> Graph {
    let copy = from_record(&to_record(g)).expect("record round-trip");
    assert_eq!(copy.shared_pages_with(g), 0, "deep copy must share nothing");
    copy
}

/// Everything a full evaluation determines, in comparable form.
fn eval_fingerprint(g: &Graph) -> (u64, u64, Vec<NodeId>) {
    let s = MState::initial(g.clone(), &EvalContext::default());
    (s.eval.peak_bytes, s.eval.latency.to_bits(), s.eval.order.clone())
}

#[test]
fn cow_clone_matches_deep_copy_on_bench_models() {
    for (w, scale) in [
        (Workload::UNet, 0.15),
        (Workload::BertBase, 0.1),
        (Workload::ResNet50, 0.1),
    ] {
        let g = w.build(scale).graph;
        let cow = g.clone();
        assert_eq!(
            cow.shared_pages_with(&g),
            g.page_count(),
            "{}: an untouched clone shares every page",
            w.label()
        );
        let deep = deep_copy(&g);
        assert_eq!(graph_hash(&cow), graph_hash(&deep), "{}: WL hash", w.label());
        assert_eq!(to_record(&cow), to_record(&deep), "{}: canonical record", w.label());
        assert_eq!(
            eval_fingerprint(&cow),
            eval_fingerprint(&deep),
            "{}: full evaluation",
            w.label()
        );
    }
}

#[test]
fn randomized_rewrites_track_deep_copy_replay() {
    // Evolve two lineages with the same seeded transform choices: one
    // through CoW clones, one through deep copies. Every intermediate
    // graph must agree bit for bit, and every snapshot taken along the
    // CoW lineage must stay frozen while its descendants mutate.
    let ctx = EvalContext::default();
    let cfg = RuleConfig::default();
    for seed in [7u64, 23] {
        let g0 = magis::models::random_dnn(&Default::default(), seed);
        let mut cow_state = MState::initial(g0.clone(), &ctx);
        let mut deep_state = MState::initial(deep_copy(&g0), &ctx);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0);
        let mut snapshots: Vec<(Graph, String)> = Vec::new();
        for step in 0..5 {
            let cands = rules::generate(&cow_state, &cfg);
            let deep_cands = rules::generate(&deep_state, &cfg);
            assert_eq!(cands, deep_cands, "seed {seed} step {step}: candidate sets");
            if cands.is_empty() {
                break;
            }
            let pick = rng.gen_range(0..cands.len());
            let (Ok(a), Ok(b)) = (
                rules::apply(&cow_state, &cands[pick]),
                rules::apply(&deep_state, &deep_cands[pick]),
            ) else {
                continue;
            };
            // Snapshot the pre-rewrite CoW graph; later mutations of
            // the lineage must never show through the shared pages.
            snapshots.push((cow_state.base.clone(), to_record(&cow_state.base)));
            assert_eq!(
                to_record(&a.base),
                to_record(&b.base),
                "seed {seed} step {step}: rewritten graphs diverge"
            );
            a.base.validate().expect("rewritten CoW graph stays valid");
            cow_state = MState::initial(a.base, &ctx);
            deep_state = MState::initial(b.base, &ctx);
            assert_eq!(
                (cow_state.eval.peak_bytes, cow_state.eval.latency.to_bits()),
                (deep_state.eval.peak_bytes, deep_state.eval.latency.to_bits()),
                "seed {seed} step {step}: evaluations diverge"
            );
        }
        for (i, (snap, record)) in snapshots.iter().enumerate() {
            assert_eq!(
                &to_record(snap),
                record,
                "seed {seed}: snapshot {i} was mutated by a descendant rewrite"
            );
        }
    }
}

#[test]
fn thread_count_invisible_on_cow_representation() {
    let tg = Workload::UNet.build(0.15);
    let init = MState::initial(tg.graph.clone(), &EvalContext::default());
    let obj = Objective::MinMemory { lat_limit: init.eval.latency * 1.10 };
    let run = |threads: usize| {
        let cfg = OptimizerConfig::new(obj)
            .with_budget(std::time::Duration::from_secs(3600))
            .with_max_evals(40)
            .with_threads(threads);
        let res = optimize(tg.graph.clone(), &cfg);
        let history: Vec<(u64, u64)> =
            res.history.iter().map(|p| (p.peak_bytes, p.latency.to_bits())).collect();
        (res.best.cost(), history, res.stats.evaluated)
    };
    assert_eq!(run(1), run(4), "thread count must not change the trajectory");
}

/// Chain of `n` unary nodes: one page every `PAGE_LEN` nodes.
fn chain(n: usize) -> Graph {
    let mut b = GraphBuilder::new(DType::F32);
    let mut cur = b.input([256], "x");
    for _ in 0..n {
        cur = b.relu(cur);
    }
    b.finish()
}

#[test]
fn clone_cost_is_bounded_by_touched_nodes_not_graph_size() {
    // The structural form of the clone-cost guard: a clone shares all
    // pages, and appending one node to a 1k-node graph unshares the
    // same (small) number of pages as on a 2k-node graph — the cost
    // tracks the delta, not the untouched-node count.
    let unshared_after_append = |n: usize| -> (usize, usize) {
        let g = chain(n);
        let c = g.clone();
        assert_eq!(c.shared_pages_with(&g), g.page_count(), "clone shares all {n} nodes");
        let mut txn = GraphTxn::begin(&c);
        let tail = c.node_ids().last().expect("chain tail");
        txn.add(OpKind::Unary(magis::graph::op::UnaryKind::Gelu), &[tail])
            .expect("append to chain");
        let (mutated, _) = txn.commit();
        let unshared = mutated.page_count() - mutated.shared_pages_with(&g);
        (unshared, mutated.page_count())
    };
    let (small, small_pages) = unshared_after_append(1024);
    let (large, large_pages) = unshared_after_append(2048);
    assert!(small_pages >= 32 && large_pages > small_pages, "graphs actually differ in size");
    assert_eq!(small, large, "unshared pages must not scale with untouched nodes");
    assert!(
        small <= 3,
        "a one-node append unshares O(1) pages (tail succs + new slot), got {small}"
    );
}

#[test]
fn long_clone_chains_stay_identical() {
    // A graph reached through many generations of clones evaluates
    // exactly like the original: page sharing never decays into
    // staleness.
    let g = Workload::BertBase.build(0.1).graph;
    let mut cur = g.clone();
    for _ in 0..64 {
        cur = cur.clone();
    }
    assert_eq!(cur.shared_pages_with(&g), g.page_count());
    assert_eq!(graph_hash(&cur), graph_hash(&g));
    assert_eq!(eval_fingerprint(&cur), eval_fingerprint(&g));
}
