#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, and the thread-count
# determinism suite (run both single-threaded and with the default
# test-runner parallelism, since the optimizer spawns its own workers
# either way).
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo build --workspace --release
run cargo test --workspace -q
run cargo clippy --workspace --all-targets -- -D warnings

# The determinism harness must hold regardless of how the test runner
# itself schedules tests.
run env RUST_TEST_THREADS=1 cargo test -q --test parallel_search
run cargo test -q --test parallel_search

echo
echo "CI gate passed."
