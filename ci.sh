#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, and the thread-count
# determinism suite (run both single-threaded and with the default
# test-runner parallelism, since the optimizer spawns its own workers
# either way).
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo build --workspace --release
run cargo test --workspace -q
run cargo clippy --workspace --all-targets -- -D warnings

# Documentation gate: rustdoc must build clean (missing_docs is warn
# in sched/sim/core/obs, promoted to an error here) and every doc
# example must run.
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
run cargo test --workspace --doc -q

# The determinism harness must hold regardless of how the test runner
# itself schedules tests.
run env RUST_TEST_THREADS=1 cargo test -q --test parallel_search
run cargo test -q --test parallel_search

# The fault-injection suite likewise: injected-fault trajectories are
# part of the determinism contract (fault keys derive from expansion
# number + candidate index, never thread identity).
run env RUST_TEST_THREADS=1 cargo test -q --test fault_injection
run env RUST_TEST_THREADS=4 cargo test -q --test fault_injection
run cargo test -q --test checkpoint_resume
run cargo test -q --test robustness_properties

# Search drivers: the greedy refactor must stay bit-identical to the
# pre-SearchDriver incumbents, and MCTS must hold the same
# thread-count-independence and kill/resume trajectory-exactness
# contract — under both test-runner scheduling regimes.
run env RUST_TEST_THREADS=1 cargo test -q -p magis-core --test driver_search
run cargo test -q -p magis-core --test driver_search

# Service supervision: deadlines return best-so-far, full queues shed
# load, same-job-twice bit-identity, drain journaling, and kill -9 +
# restart resuming bit-identical to an uninterrupted run.
run cargo test -q --test serve_robustness

# Observability: count metrics and the trace-event identity set must be
# bit-identical across thread counts — and, at the service level,
# across worker-pool sizes; watch streams are monotone and inert.
run cargo test -q --test observability
run cargo test -q --test serve_observability

# Copy-on-write graph representation: CoW clones must be
# observationally identical to deep copies (WL hash, canonical record,
# full evaluation, randomized rewrite lineages), snapshots must stay
# frozen while descendants mutate, and the structural clone-cost guard
# must hold — a one-node rewrite of a 1k-node graph unshares the same
# page count as on a 2k-node graph (cost tracks the delta, not the
# untouched-node count).
run env RUST_TEST_THREADS=1 cargo test -q --test cow_graph
run cargo test -q --test cow_graph

# Incremental evaluation: every delta-scheduled / delta-profiled /
# cache-served candidate must be bit-identical to a from-scratch
# re-evaluation (paranoid cross-check on the bench workloads), and the
# eval cache must not perturb the thread-count determinism contract.
run cargo test -q --test incremental_eval

# Memory planner: allocation soundness (no time×address overlap),
# planned >= liveness dominance, coalescing reuse, and delta-vs-full
# re-planning bit-identity across the bench models and a randomized
# rewrite sequence.
run cargo test -q --test memory_planner

# Planned objective at search level: paranoid cross-checks of every
# delta-planned candidate, and thread-count determinism of the planned
# peak / fragmentation ratio / accepted-candidate sequence.
run cargo test -q --test planner_search

# Backend registry: every registered device profile evaluates the bench
# models to finite results, the default profile is bit-identical to the
# historical cost model, calibration round-trips, and the determinism
# contract holds per backend.
run cargo test -q --test backend_registry

# Backend CLI smoke: the registry is reachable end-to-end (--backend-list,
# a non-default profile, and an unknown name rejected with usage exit 2).
run ./target/release/magis --backend-list
run ./target/release/magis inspect --workload unet --scale 0.1 --backend a100
if ./target/release/magis inspect --workload unet --backend warp-drive 2>/dev/null; then
    echo "unknown backend was not rejected"; exit 1
fi

# Planner CLI smoke: a short paranoid planned-objective search runs end
# to end, and a bogus objective is rejected with usage exit 2.
run ./target/release/magis optimize --workload unet --scale 0.1 \
    --budget-ms 2000 --objective planned --paranoia all
if ./target/release/magis optimize --workload unet --objective wishful 2>/dev/null; then
    echo "unknown objective was not rejected"; exit 1
fi

# Driver CLI smoke: an MCTS search runs end to end under the planned
# objective, and an unknown strategy is rejected with usage exit 2.
run ./target/release/magis optimize --workload unet --scale 0.1 \
    --budget-ms 2000 --driver mcts --objective planned
if ./target/release/magis optimize --workload unet --driver quantum 2>/dev/null; then
    echo "unknown driver was not rejected"; exit 1
fi

# Crash-recovery smoke: hard-kill a checkpointing CLI search mid-budget,
# then resume it to completion from the survived checkpoint.
CKPT="$(mktemp -d)/unet.ckpt"
echo
echo "==> kill/resume smoke (checkpoint at $CKPT)"
# Run the built binary directly: killing `cargo run` would orphan the
# search process and leave it racing the resume step below.
timeout -s KILL 4 ./target/release/magis optimize \
    --workload unet --scale 0.2 --mode memory --budget-ms 60000 \
    --checkpoint "$CKPT" --checkpoint-every 4 || true
test -f "$CKPT" || { echo "no checkpoint survived the kill"; exit 1; }
run ./target/release/magis optimize --resume "$CKPT" --budget-ms 3000
rm -rf "$(dirname "$CKPT")"

# Deadline smoke: a hard wall limit returns a best-so-far result and
# reports the deadline stop reason in the summary.
echo
echo "==> deadline smoke"
DEADLINE_OUT="$(./target/release/magis optimize --workload unet --scale 0.15 \
    --mode memory --budget-ms 60000 --wall-limit-ms 300 2>&1)"
grep -q "stop reason *deadline" <<<"$DEADLINE_OUT" \
    || { echo "$DEADLINE_OUT"; echo "deadline stop reason missing"; exit 1; }

# Service smoke: start the daemon, push two jobs through the CLI
# client (the second hits the cross-request result cache), then
# SIGTERM and require a clean drain.
SRV_DIR="$(mktemp -d)"
echo
echo "==> serve smoke (state in $SRV_DIR)"
./target/release/magis-served --addr 127.0.0.1:0 \
    --state-dir "$SRV_DIR/state" --port-file "$SRV_DIR/port" --workers 2 &
SRV_PID=$!
for _ in $(seq 1 100); do test -s "$SRV_DIR/port" && break; sleep 0.1; done
test -s "$SRV_DIR/port" || { echo "daemon never wrote its port file"; exit 1; }
run ./target/release/magis submit --port-file "$SRV_DIR/port" \
    --workload unet --scale 0.1 --max-candidates 40
run ./target/release/magis submit --port-file "$SRV_DIR/port" \
    --workload unet --scale 0.1 --max-candidates 40

# Observability leg: attach a watcher to an in-flight job, then scrape
# the metrics surface and require real completion counts plus the
# per-job correlated trace.
SUBMIT_OUT="$(./target/release/magis submit --port-file "$SRV_DIR/port" \
    --workload unet --scale 0.15 --max-candidates 200 --wait false)"
JOB_ID="$(grep -o '[0-9]\+' <<<"$SUBMIT_OUT" | head -1)"
test -n "$JOB_ID" || { echo "$SUBMIT_OUT"; echo "no job id from nowait submit"; exit 1; }
run ./target/release/magis watch --port-file "$SRV_DIR/port" --id "$JOB_ID"
METRICS_OUT="$(./target/release/magis metrics --port-file "$SRV_DIR/port")"
grep -q '^magis_serve_queue_depth ' <<<"$METRICS_OUT" \
    || { echo "$METRICS_OUT"; echo "metrics scrape is missing the queue-depth gauge"; exit 1; }
COMPLETED="$(awk '$1 == "magis_serve_jobs_completed" { print $2 }' <<<"$METRICS_OUT")"
[ -n "$COMPLETED" ] && [ "$COMPLETED" -ge 1 ] \
    || { echo "$METRICS_OUT"; echo "magis_serve_jobs_completed is empty or zero"; exit 1; }
run ./target/release/magis trace-check \
    --trace "$SRV_DIR/state/jobs/job-$JOB_ID/trace.jsonl" --expect-job "$JOB_ID"
run ./target/release/magis top --port-file "$SRV_DIR/port" --iterations 1

kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo "daemon did not exit cleanly after SIGTERM"; exit 1; }
rm -rf "$SRV_DIR"

# Traced smoke: a short optimize run must produce a JSONL trace where
# every line parses (trace-check) and a non-empty metrics snapshot.
OBS_DIR="$(mktemp -d)"
echo
echo "==> traced smoke (artifacts in $OBS_DIR)"
run ./target/release/magis optimize \
    --workload unet --scale 0.15 --mode memory --budget-ms 3000 \
    --trace-out "$OBS_DIR/trace.jsonl" --metrics-out "$OBS_DIR/metrics.txt" \
    --log-level info
run ./target/release/magis trace-check --trace "$OBS_DIR/trace.jsonl"
test -s "$OBS_DIR/metrics.txt" || { echo "metrics snapshot is empty"; exit 1; }
grep -q "magis_core_expansions" "$OBS_DIR/metrics.txt" \
    || { echo "metrics snapshot is missing core counters"; exit 1; }
rm -rf "$OBS_DIR"

# Overhead guard: with tracing disabled, the always-on instrumentation
# must stay within 5% (+ noise floor) of a fully suppressed run.
run ./target/release/obs_overhead --check --out "$(mktemp -d)"

echo
echo "CI gate passed."
